"""Tests for framed-slotted ALOHA arbitration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linklayer import FramedAlohaReader


class TestConfigValidation:
    def test_q_ordering(self):
        with pytest.raises(ValueError):
            FramedAlohaReader(q_initial=2, q_min=3)
        with pytest.raises(ValueError):
            FramedAlohaReader(q_initial=16, q_max=15)

    def test_adaptation_constants(self):
        with pytest.raises(ValueError):
            FramedAlohaReader(c_collision=0)
        with pytest.raises(ValueError):
            FramedAlohaReader(c_idle=-1)

    def test_max_frames(self):
        with pytest.raises(ValueError):
            FramedAlohaReader(max_frames=0)

    def test_policy(self):
        with pytest.raises(ValueError):
            FramedAlohaReader(policy="bogus")


class TestInventory:
    def test_zero_tags(self):
        stats = FramedAlohaReader().inventory(0, seed=0)
        assert stats.tags_identified == 0
        assert stats.frames == 0
        assert stats.micro_slots == 0
        assert stats.efficiency == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FramedAlohaReader().inventory(-1)

    def test_single_tag(self):
        stats = FramedAlohaReader().inventory(1, seed=0)
        assert stats.tags_identified == 1
        assert stats.successes == 1
        assert stats.collisions == 0

    def test_all_identified(self):
        for n in (1, 5, 40, 200):
            stats = FramedAlohaReader().inventory(n, seed=3)
            assert stats.tags_identified == n, n

    def test_accounting_consistent(self):
        stats = FramedAlohaReader().inventory(50, seed=1)
        assert stats.successes == stats.tags_identified
        assert stats.micro_slots == sum(stats.frame_sizes)
        assert stats.frames == len(stats.frame_sizes)
        assert stats.successes + stats.collisions + stats.idles == stats.micro_slots

    def test_deterministic_given_seed(self):
        a = FramedAlohaReader().inventory(64, seed=9)
        b = FramedAlohaReader().inventory(64, seed=9)
        assert a == b

    def test_frame_sizes_power_of_two(self):
        stats = FramedAlohaReader().inventory(100, seed=2)
        for f in stats.frame_sizes:
            assert f & (f - 1) == 0

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_schoute_efficiency_near_optimum(self, n):
        effs = [
            FramedAlohaReader().inventory(n, seed=s).efficiency for s in range(8)
        ]
        mean = np.mean(effs)
        # classical framed-ALOHA optimum is 1/e ≈ 0.368; Schoute tracking
        # should land in a broad band around it
        assert 0.25 < mean < 0.45, mean

    def test_q_policy_still_terminates(self):
        stats = FramedAlohaReader(policy="q").inventory(128, seed=0)
        assert stats.tags_identified == 128

    def test_max_frames_cap(self):
        # starved configuration: frame pinned to size 1 → mostly collisions
        reader = FramedAlohaReader(
            q_initial=0, q_min=0, q_max=0, max_frames=5, policy="q"
        )
        stats = reader.inventory(10, seed=0)
        assert stats.frames == 5
        assert stats.tags_identified < 10

    @given(n=st.integers(0, 300), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, n, seed):
        stats = FramedAlohaReader().inventory(n, seed=seed)
        assert 0 <= stats.tags_identified <= n
        assert stats.successes == stats.tags_identified
        assert stats.micro_slots >= stats.tags_identified
        assert 0.0 <= stats.efficiency <= 1.0


class TestCaptureEffect:
    def test_validation(self):
        with pytest.raises(ValueError):
            FramedAlohaReader(capture_probability=1.5)
        with pytest.raises(ValueError):
            FramedAlohaReader(capture_probability=-0.1)

    def test_zero_capture_is_default_model(self):
        a = FramedAlohaReader().inventory(64, seed=5)
        b = FramedAlohaReader(capture_probability=0.0).inventory(64, seed=5)
        assert a == b

    def test_capture_improves_efficiency(self):
        n = 128
        base = np.mean(
            [FramedAlohaReader().inventory(n, seed=s).efficiency for s in range(10)]
        )
        captured = np.mean(
            [
                FramedAlohaReader(capture_probability=0.5)
                .inventory(n, seed=s)
                .efficiency
                for s in range(10)
            ]
        )
        assert captured > base

    def test_full_capture_every_busy_slot_succeeds(self):
        stats = FramedAlohaReader(capture_probability=1.0).inventory(50, seed=0)
        assert stats.collisions == 0
        assert stats.tags_identified == 50

    def test_all_tags_still_identified(self):
        for p in (0.25, 0.75):
            stats = FramedAlohaReader(capture_probability=p).inventory(100, seed=1)
            assert stats.tags_identified == 100
            assert (
                stats.successes + stats.collisions + stats.idles
                == stats.micro_slots
            )
