"""Tests for tag-population estimation (Kodialam–Nandagopal)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linklayer import (
    ProbeFrame,
    collision_estimate,
    estimate_population,
    probe,
    zero_estimate,
)


class TestProbeFrame:
    def test_validation_sum(self):
        with pytest.raises(ValueError, match="sum"):
            ProbeFrame(frame_size=4, idles=1, singletons=1, collisions=1)

    def test_validation_negative(self):
        with pytest.raises(ValueError):
            ProbeFrame(frame_size=2, idles=-1, singletons=2, collisions=1)

    def test_validation_frame(self):
        with pytest.raises(ValueError):
            ProbeFrame(frame_size=0, idles=0, singletons=0, collisions=0)


class TestProbe:
    def test_counts_sum_to_frame(self):
        frame = probe(37, 16, seed=0)
        assert frame.idles + frame.singletons + frame.collisions == 16

    def test_zero_tags_all_idle(self):
        frame = probe(0, 8, seed=0)
        assert frame.idles == 8
        assert frame.singletons == 0

    def test_one_tag_one_singleton(self):
        frame = probe(1, 8, seed=0)
        assert frame.singletons == 1

    def test_deterministic(self):
        assert probe(50, 32, seed=7) == probe(50, 32, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            probe(-1, 8)
        with pytest.raises(ValueError):
            probe(5, 0)


class TestZeroEstimate:
    def test_exact_on_expected_idles(self):
        # if N0 == F e^{-n/F} exactly, ZE returns n exactly
        F, n = 100, 80
        n0 = F * math.exp(-n / F)
        frame = ProbeFrame(
            frame_size=F,
            idles=round(n0),
            singletons=F - round(n0),
            collisions=0,
        )
        est = zero_estimate(frame)
        assert est == pytest.approx(n, rel=0.05)

    def test_saturated_frame_inf(self):
        frame = ProbeFrame(frame_size=4, idles=0, singletons=0, collisions=4)
        assert zero_estimate(frame) == math.inf

    def test_empty_frame_zero(self):
        frame = ProbeFrame(frame_size=8, idles=8, singletons=0, collisions=0)
        assert zero_estimate(frame) == 0.0

    def test_statistical_accuracy(self):
        """Averaged over many probes, ZE lands within ~10% of truth."""
        n, F = 120, 128
        ests = [zero_estimate(probe(n, F, seed=s)) for s in range(60)]
        ests = [e for e in ests if math.isfinite(e)]
        assert abs(np.mean(ests) - n) / n < 0.10


class TestCollisionEstimate:
    def test_no_collisions(self):
        frame = ProbeFrame(frame_size=8, idles=7, singletons=1, collisions=0)
        assert collision_estimate(frame) == 1.0

    def test_all_collisions_inf(self):
        frame = ProbeFrame(frame_size=4, idles=0, singletons=0, collisions=4)
        assert collision_estimate(frame) == math.inf

    def test_inverts_forward_model(self):
        # choose t, compute expected collision fraction, invert
        F = 1000
        for t in (0.5, 1.0, 2.0):
            frac = 1 - (1 + t) * math.exp(-t)
            c = round(frac * F)
            frame = ProbeFrame(frame_size=F, idles=F - c, singletons=0, collisions=c)
            est = collision_estimate(frame)
            assert est == pytest.approx(t * F, rel=0.02)

    def test_statistical_accuracy(self):
        n, F = 200, 128
        ests = [collision_estimate(probe(n, F, seed=s)) for s in range(60)]
        ests = [e for e in ests if math.isfinite(e)]
        assert abs(np.mean(ests) - n) / n < 0.15


class TestEstimatePopulation:
    @pytest.mark.parametrize("estimator", ["zero", "collision"])
    def test_adaptive_scheme_converges(self, estimator):
        est = estimate_population(500, initial_frame=8, estimator=estimator, seed=0)
        assert math.isfinite(est)
        assert abs(est - 500) / 500 < 0.5  # single probe; loose band

    def test_zero_population(self):
        assert estimate_population(0, seed=0) == 0.0

    def test_bad_estimator(self):
        with pytest.raises(ValueError):
            estimate_population(10, estimator="psychic")

    def test_bad_frame(self):
        with pytest.raises(ValueError):
            estimate_population(10, initial_frame=0)

    @given(n=st.integers(0, 400), seed=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_always_finite_and_nonnegative(self, n, seed):
        est = estimate_population(n, seed=seed)
        assert math.isfinite(est)
        assert est >= 0
