"""Tests for inventory sessions (scheduler slot → link-layer cost)."""

import numpy as np
import pytest

from repro.linklayer import run_inventory_session
from tests.conftest import make_random_system


@pytest.fixture
def system():
    return make_random_system(10, 120, 35, 9, 6, seed=2)


class TestSession:
    def test_counts_well_covered(self, system):
        from repro.core import exact_mwfs

        result = exact_mwfs(system)
        inv = run_inventory_session(system, result.active, seed=0)
        assert inv.tags_read == result.weight

    def test_empty_active(self, system):
        inv = run_inventory_session(system, [], seed=0)
        assert inv.tags_read == 0
        assert inv.duration == 0
        assert inv.total_work == 0

    def test_owner_attribution(self, system):
        from repro.core import exact_mwfs

        active = exact_mwfs(system).active
        inv = run_inventory_session(system, active, seed=0)
        # every owner must be an active reader; counts sum to tags_read
        assert set(inv.tags_by_reader) <= set(int(a) for a in active)
        assert sum(inv.tags_by_reader.values()) == inv.tags_read

    def test_duration_is_max_work_is_sum(self, system):
        from repro.core import exact_mwfs

        active = exact_mwfs(system).active
        inv = run_inventory_session(system, active, seed=0)
        assert inv.duration == max(inv.micro_slots_by_reader.values())
        assert inv.total_work == sum(inv.micro_slots_by_reader.values())
        assert inv.duration <= inv.total_work

    def test_treewalk_protocol(self, system):
        from repro.core import exact_mwfs

        active = exact_mwfs(system).active
        inv = run_inventory_session(system, active, protocol="treewalk", seed=0)
        assert inv.tags_read > 0
        assert all(v >= 1 for v in inv.micro_slots_by_reader.values())

    def test_unknown_protocol(self, system):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_inventory_session(system, [0], protocol="tdma", seed=0)

    def test_unread_mask(self, system):
        unread = np.zeros(system.num_tags, dtype=bool)
        inv = run_inventory_session(system, [0, 1], unread=unread, seed=0)
        assert inv.tags_read == 0

    def test_deterministic(self, system):
        a = run_inventory_session(system, [0, 3, 6], seed=5)
        b = run_inventory_session(system, [0, 3, 6], seed=5)
        assert a.micro_slots_by_reader == b.micro_slots_by_reader

    def test_micro_slots_at_least_tags(self, system):
        inv = run_inventory_session(system, range(system.num_readers), seed=1)
        for reader, slots in inv.micro_slots_by_reader.items():
            assert slots >= inv.tags_by_reader[reader]
