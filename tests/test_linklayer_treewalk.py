"""Tests for binary tree-walking arbitration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linklayer import TreeWalkReader


class TestDrawIds:
    def test_distinct(self):
        ids = TreeWalkReader(id_bits=16).draw_ids(200, seed=0)
        assert len(set(int(x) for x in ids)) == 200

    def test_in_range(self):
        ids = TreeWalkReader(id_bits=8).draw_ids(100, seed=0)
        assert all(0 <= int(x) < 256 for x in ids)

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            TreeWalkReader(id_bits=3).draw_ids(9)

    def test_exact_space(self):
        ids = TreeWalkReader(id_bits=3).draw_ids(8, seed=0)
        assert sorted(int(x) for x in ids) == list(range(8))

    def test_zero(self):
        assert TreeWalkReader().draw_ids(0).size == 0


class TestInventory:
    def test_requires_input(self):
        with pytest.raises(ValueError):
            TreeWalkReader().inventory()

    def test_zero_tags(self):
        stats = TreeWalkReader().inventory(num_tags=0, seed=0)
        assert stats.tags_identified == 0
        assert stats.micro_slots == 1  # the initial empty query
        assert stats.idles == 1

    def test_single_tag(self):
        stats = TreeWalkReader().inventory(tag_ids=[42])
        assert stats.tags_identified == 1
        assert stats.micro_slots == 1
        assert stats.collisions == 0

    def test_two_sibling_ids(self):
        # ids differing only in the last bit: collide down the whole trie
        reader = TreeWalkReader(id_bits=4)
        stats = reader.inventory(tag_ids=[0b0000, 0b0001])
        assert stats.tags_identified == 2
        assert stats.collisions == 4  # root + 3 shared-prefix levels
        assert stats.max_depth == 4

    def test_two_distant_ids(self):
        reader = TreeWalkReader(id_bits=4)
        stats = reader.inventory(tag_ids=[0b0000, 0b1000])
        assert stats.collisions == 1  # split at the root

    def test_all_identified(self):
        for n in (1, 7, 64, 300):
            stats = TreeWalkReader().inventory(num_tags=n, seed=1)
            assert stats.tags_identified == n

    def test_query_accounting(self):
        stats = TreeWalkReader().inventory(num_tags=50, seed=2)
        assert (
            stats.micro_slots
            == stats.collisions + stats.idles + stats.tags_identified
        )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TreeWalkReader().inventory(tag_ids=[1, 1])

    def test_out_of_space_ids_rejected(self):
        with pytest.raises(ValueError):
            TreeWalkReader(id_bits=4).inventory(tag_ids=[16])

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            TreeWalkReader(id_bits=0)

    def test_structural_identity(self):
        """Internal trie nodes = collisions; binary trie over n ≥ 2 leaves
        has n−1 branching nodes plus shared-prefix chains."""
        reader = TreeWalkReader(id_bits=10)
        stats = reader.inventory(num_tags=40, seed=3)
        assert stats.collisions >= 40 - 1

    @given(n=st.integers(1, 100), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, n, seed):
        stats = TreeWalkReader(id_bits=24).inventory(num_tags=n, seed=seed)
        assert stats.tags_identified == n
        assert stats.max_depth <= 24
        assert stats.collisions >= max(n - 1, 0)
        assert 0 < stats.efficiency <= 1.0

    @given(
        ids=st.lists(st.integers(0, 255), min_size=1, max_size=30, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_on_explicit_ids(self, ids):
        reader = TreeWalkReader(id_bits=8)
        a = reader.inventory(tag_ids=ids)
        b = reader.inventory(tag_ids=ids)
        assert a == b
        assert a.tags_identified == len(ids)
