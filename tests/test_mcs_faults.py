"""Contract tests for the fault-tolerant covering-schedule driver.

Pins, per ``docs/robustness.md``:

* **default-path identity** — with ``faults=None`` the hardened driver's
  schedules and BENCH counters are bit-identical to the historical path;
* **determinism** — equal (schedule seed, plan) pairs reproduce identical
  fault traces and schedules, and every solver faces the same failed-reader
  trace;
* **liveness** — under non-permanent faults with ACK-based retirement every
  solver still reads 100 % of coverable tags;
* heartbeat suspicion excludes crashed readers and lifts on recovery;
* the deadline ladder degrades primary → fallback → singleton and emits the
  typed events;
* the stall guard terminates hopeless runs with ``ScheduleOutcome.stalled``.
"""

import functools

import numpy as np
import pytest

from repro.baselines.hillclimb import greedy_hill_climbing
from repro.core.distributed import distributed_mwfs
from repro.core.exact import exact_mwfs
from repro.core.localsearch import local_search_mwfs
from repro.core.mcs import ScheduleOutcome, greedy_covering_schedule
from repro.core.neighborhood import centralized_location_free
from repro.core.oneshot import get_solver
from repro.core.ptas import ptas_mwfs
from repro.faults import (
    FaultPlan,
    FaultPolicy,
    FlakyActivation,
    PermanentCrash,
    TransientCrash,
)
from repro.model import build_system
from repro.obs.collectors import RunCollector
from repro.obs.events import (
    ReaderFailed,
    ReadMissed,
    ScheduleDegraded,
    SolverDeadline,
    TraceRecorder,
    recording,
)
from tests.conftest import make_random_system

SOLVERS = {
    "exact": exact_mwfs,
    "ptas": functools.partial(ptas_mwfs, k=2),
    "localsearch": local_search_mwfs,
    "centralized": centralized_location_free,
    "distributed": distributed_mwfs,
    "ghc": greedy_hill_climbing,
}


def _fingerprint(result):
    return {
        "size": result.size,
        "complete": result.complete,
        "outcome": result.outcome,
        "weights": [slot.weight for slot in result.slots],
        "tags_read": [slot.tags_read.tolist() for slot in result.slots],
        "active": [slot.active.tolist() for slot in result.slots],
    }


def _small():
    return make_random_system(10, 120, 40, 8, 5, seed=3)


def _all_coverable():
    """Dense instance where every tag is coverable (liveness precondition)."""
    rng = np.random.default_rng(12)
    n, m, side = 8, 80, 24.0
    readers = rng.uniform(0, side, size=(n, 2))
    tags = readers[rng.integers(0, n, size=m)] + rng.uniform(
        -2.0, 2.0, size=(m, 2)
    )
    system = build_system(
        readers, np.full(n, 10.0), np.full(n, 6.0), tags
    )
    assert system.covered_by_any().all()
    return system


# ---------------------------------------------------------------------------
# default-path identity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SOLVERS))
class TestDefaultPathIdentity:
    def test_schedule_and_counters_identical(self, name):
        system = _small()
        solver = SOLVERS[name]

        def run(**kwargs):
            collector = RunCollector()
            with recording(collector):
                result = greedy_covering_schedule(
                    system, solver, seed=11, **kwargs
                )
            metrics = collector.summary()
            for key in ("solver_wall_clock_s", "solver_seconds_by_name",
                        "stage_seconds_by_name", "histograms"):
                metrics.pop(key, None)
            return result, metrics

        ref, ref_metrics = run()
        new, new_metrics = run(faults=None)
        assert _fingerprint(new) == _fingerprint(ref)
        assert new_metrics == ref_metrics
        assert new.fault_trace is None
        # no fault counters leak into default-path records
        assert "readers_failed" not in new_metrics

    def test_empty_plan_matches_default_schedule(self, name):
        system = _small()
        solver = SOLVERS[name]
        ref = greedy_covering_schedule(system, solver, seed=11)
        empty = greedy_covering_schedule(
            system, solver, seed=11, faults=FaultPlan()
        )
        assert _fingerprint(empty) == _fingerprint(ref)
        assert empty.fault_trace is not None


# ---------------------------------------------------------------------------
# determinism and solver independence
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SOLVERS))
class TestDeterminism:
    def test_equal_seeds_equal_traces_and_schedules(self, name):
        system = _all_coverable()
        plan = FaultPlan.uniform_flaky(
            system.num_readers, 0.3, miss_rate=0.2, seed=41
        )
        a = greedy_covering_schedule(
            system, SOLVERS[name], seed=7, faults=plan, max_slots=4000
        )
        b = greedy_covering_schedule(
            system, SOLVERS[name], seed=7, faults=plan, max_slots=4000
        )
        assert a.fault_trace == b.fault_trace
        assert _fingerprint(a) == _fingerprint(b)


def test_failed_reader_trace_is_solver_independent():
    """Every solver faces the same failure mask at slot *t*."""
    system = _all_coverable()
    plan = FaultPlan.uniform_flaky(system.num_readers, 0.3, seed=13)
    failed_by_solver = {}
    for name, solver in SOLVERS.items():
        result = greedy_covering_schedule(
            system, solver, seed=7, faults=plan, max_slots=4000
        )
        failed_by_solver[name] = {
            slot: failed for slot, failed, _ in result.fault_trace
        }
    names = sorted(failed_by_solver)
    shortest = min(len(failed_by_solver[n]) for n in names)
    for slot in range(shortest):
        masks = {failed_by_solver[n][slot] for n in names}
        assert len(masks) == 1, f"slot {slot} masks differ: {masks}"


# ---------------------------------------------------------------------------
# liveness: non-permanent faults never cost tags, only slots
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SOLVERS))
def test_liveness_under_flaky_and_miss(name):
    system = _all_coverable()
    plan = FaultPlan.uniform_flaky(
        system.num_readers, 0.3, miss_rate=0.2, seed=29
    )
    result = greedy_covering_schedule(
        system, SOLVERS[name], seed=5, faults=plan, max_slots=4000
    )
    assert result.outcome is ScheduleOutcome.complete
    assert result.complete
    assert result.tags_read_total == system.num_tags


def test_ack_retirement_retries_missed_reads():
    system = _all_coverable()
    plan = FaultPlan(miss_rate=0.5, seed=3)
    collector = RunCollector()
    with recording(collector):
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=5, faults=plan, max_slots=4000
        )
    assert result.complete
    assert collector.fault_counters["reads_missed"] > 0
    # missed reads cost slots, never tags
    baseline = greedy_covering_schedule(system, SOLVERS["ghc"], seed=5)
    assert result.size > baseline.size
    assert result.tags_read_total == baseline.tags_read_total
    # the summary exports the fault block only when events were seen
    assert collector.summary()["reads_missed"] > 0


# ---------------------------------------------------------------------------
# heartbeat suspicion and recovery
# ---------------------------------------------------------------------------
class TestSuspicion:
    def test_permanent_crash_of_sole_coverer_stalls(self, line_system):
        # reader C is tag 2's only coverer; crash it from slot 0
        plan = FaultPlan(reader_faults=(PermanentCrash(2, 0),))
        rec = TraceRecorder()
        with recording(rec):
            result = greedy_covering_schedule(
                line_system, SOLVERS["ghc"], seed=0, faults=plan,
                policy=FaultPolicy(max_stall_slots=4),
            )
        assert result.outcome is ScheduleOutcome.stalled
        assert not result.complete
        # tags 0 and 1 (covered by live readers) were still read
        assert result.tags_read_total == 2
        failures = [e for e in rec.events if isinstance(e, ReaderFailed)]
        assert [e.reader for e in failures] == [2]

    def test_transient_crash_recovers_and_completes(self, line_system):
        plan = FaultPlan(reader_faults=(TransientCrash(2, 0, 5),))
        result = greedy_covering_schedule(
            line_system, SOLVERS["ghc"], seed=0, faults=plan
        )
        assert result.outcome is ScheduleOutcome.complete
        # reader C was down for the first 5 slots, so the run took longer
        baseline = greedy_covering_schedule(line_system, SOLVERS["ghc"], seed=0)
        assert result.size > baseline.size
        assert result.tags_read_total == baseline.tags_read_total

    def test_suspected_readers_not_proposed(self):
        system = _all_coverable()
        crashed = 0
        plan = FaultPlan(reader_faults=(PermanentCrash(crashed, 0),))
        policy = FaultPolicy(heartbeat_timeout=2)
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=5, faults=plan, policy=policy,
            max_slots=4000,
        )
        # after the timeout, the crashed reader never appears active
        for slot in result.slots[policy.heartbeat_timeout:]:
            assert crashed not in slot.active.tolist()


# ---------------------------------------------------------------------------
# deadline ladder
# ---------------------------------------------------------------------------
class TestDeadlineLadder:
    def test_degrades_through_fallback_to_singleton(self):
        system = _small()
        policy = FaultPolicy(
            solver_deadline_s=0.0, deadline_retries=0, fallback_solver="ghc"
        )
        rec = TraceRecorder()
        with recording(rec):
            result = greedy_covering_schedule(
                system, get_solver("centralized"), seed=11, policy=policy
            )
        assert result.complete
        misses = [e for e in rec.events if isinstance(e, SolverDeadline)]
        steps = [e for e in rec.events if isinstance(e, ScheduleDegraded)]
        assert len(misses) >= 2
        assert [(e.from_policy, e.to_policy) for e in steps] == [
            ("centralized_location_free", "ghc"),
            ("ghc", "singleton"),
        ]
        # once on the singleton rung, slots carry the singleton meta
        last_meta = result.slots[-1].solver_meta
        assert last_meta.get("solver") == "singleton"

    def test_no_fallback_goes_straight_to_singleton(self):
        system = _small()
        policy = FaultPolicy(solver_deadline_s=0.0, deadline_retries=1)
        rec = TraceRecorder()
        with recording(rec):
            result = greedy_covering_schedule(
                system, get_solver("ghc"), seed=11, policy=policy
            )
        assert result.complete
        steps = [e for e in rec.events if isinstance(e, ScheduleDegraded)]
        if steps:  # enough slots to trip the retries
            assert steps[0].to_policy == "singleton"

    def test_generous_deadline_never_degrades(self):
        system = _small()
        policy = FaultPolicy(solver_deadline_s=3600.0)
        ref = greedy_covering_schedule(system, SOLVERS["ghc"], seed=11)
        rec = TraceRecorder()
        with recording(rec):
            result = greedy_covering_schedule(
                system, SOLVERS["ghc"], seed=11, policy=policy
            )
        assert not [e for e in rec.events if isinstance(e, ScheduleDegraded)]
        assert _fingerprint(result) == _fingerprint(ref)


# ---------------------------------------------------------------------------
# stall guard and outcomes
# ---------------------------------------------------------------------------
class TestOutcomes:
    def test_max_slots_exhausted(self):
        system = _small()
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=11, max_slots=1
        )
        assert not result.complete
        assert result.outcome is ScheduleOutcome.exhausted

    def test_complete_outcome_default_path(self):
        system = _small()
        result = greedy_covering_schedule(system, SOLVERS["ghc"], seed=11)
        assert result.complete
        assert result.outcome is ScheduleOutcome.complete

    def test_all_readers_crashed_stalls_quickly(self):
        system = _small()
        plan = FaultPlan(
            reader_faults=tuple(
                PermanentCrash(r, 0) for r in range(system.num_readers)
            )
        )
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=11, faults=plan,
            policy=FaultPolicy(max_stall_slots=3),
        )
        assert result.outcome is ScheduleOutcome.stalled
        assert result.size == 3
        assert result.tags_read_total == 0

    def test_stall_guard_respects_override(self):
        system = _small()
        plan = FaultPlan(
            reader_faults=tuple(
                PermanentCrash(r, 0) for r in range(system.num_readers)
            )
        )
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=11, faults=plan, max_stall_slots=7
        )
        assert result.outcome is ScheduleOutcome.stalled
        assert result.size == 7

    def test_total_miss_world_terminates_stalled(self):
        # miss_rate=1.0 loses every read forever: ACK retirement never
        # fires, so liveness rests entirely on the stall guard — the run
        # must end in exactly max_stall_slots slots with nothing retired,
        # not spin to the slot cap.
        system = _small()
        plan = FaultPlan(miss_rate=1.0, seed=1)
        result = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=11, faults=plan,
            policy=FaultPolicy(max_stall_slots=5),
        )
        assert result.outcome is ScheduleOutcome.stalled
        assert result.size == 5
        assert result.tags_read_total == 0

    def test_stall_guard_available_without_faults(self):
        # an explicit max_stall_slots works on the default path too; a
        # completing run never trips it
        system = _small()
        ref = greedy_covering_schedule(system, SOLVERS["ghc"], seed=11)
        guarded = greedy_covering_schedule(
            system, SOLVERS["ghc"], seed=11, max_stall_slots=2
        )
        assert _fingerprint(guarded) == _fingerprint(ref)


# ---------------------------------------------------------------------------
# composition with the incremental engine
# ---------------------------------------------------------------------------
def test_faults_compose_with_incremental():
    system = _all_coverable()
    plan = FaultPlan.uniform_flaky(
        system.num_readers, 0.2, miss_rate=0.1, seed=31
    )
    plain = greedy_covering_schedule(
        system, SOLVERS["ghc"], seed=5, faults=plan, max_slots=4000
    )
    inc = greedy_covering_schedule(
        system, SOLVERS["ghc"], seed=5, faults=plan, max_slots=4000,
        incremental=True,
    )
    assert inc.complete
    assert inc.fault_trace is not None
    assert plain.complete


def test_linklayer_charges_missed_reads():
    """Missed tags still pay micro-slots but are not counted as read."""
    system = _all_coverable()
    plan = FaultPlan(miss_rate=0.4, seed=9)
    result = greedy_covering_schedule(
        system, SOLVERS["ghc"], seed=5, faults=plan, linklayer="aloha",
        max_slots=4000,
    )
    assert result.complete
    for slot in result.slots:
        if slot.inventory is not None:
            assert slot.inventory.tags_read == len(slot.tags_read)
