"""Tests for repro.model.collisions."""

import numpy as np
import pytest

from repro.model import (
    classify_collisions,
    operational_mask,
    rrc_blocked_tags,
    rtc_victims,
)


class TestRtcVictims:
    def test_mutual_pair(self, line_system):
        np.testing.assert_array_equal(rtc_victims(line_system, [0, 1]), [0, 1])

    def test_independent_pair_clean(self, line_system):
        assert len(rtc_victims(line_system, [0, 2])) == 0

    def test_empty(self, line_system):
        assert len(rtc_victims(line_system, [])) == 0

    def test_asymmetric_victim(self):
        from repro.model import build_system

        # big reader 0 covers reader 1; reader 1's disk does not reach 0:
        # only reader 1 is a victim.
        system = build_system(
            reader_positions=[[0.0, 0.0], [4.0, 0.0]],
            interference_radii=[6.0, 2.0],
            interrogation_radii=[3.0, 1.0],
            tag_positions=[[4.0, 0.5]],
        )
        np.testing.assert_array_equal(rtc_victims(system, [0, 1]), [1])
        # ... and the victim's tag is not well-covered even though it is
        # covered by exactly one reader.
        assert system.weight([0, 1]) == 0
        assert system.weight([1]) == 1


class TestOperationalMask:
    def test_alignment_with_sorted_active(self, line_system):
        mask = operational_mask(line_system, [2, 0, 1])
        # sorted active = [0,1,2]; 0 and 1 suffer, 2 operational
        np.testing.assert_array_equal(mask, [False, False, True])


class TestRrcBlockedTags:
    def test_overlap_blocks(self, figure2_system):
        blocked = rrc_blocked_tags(figure2_system, [0, 1, 2])
        np.testing.assert_array_equal(blocked, [1, 2])  # tags 2 and 3

    def test_no_overlap_no_blocks(self, figure2_system):
        assert len(rrc_blocked_tags(figure2_system, [0, 2])) == 0

    def test_unread_filter(self, figure2_system):
        unread = np.array([True, False, True, True, True])
        blocked = rrc_blocked_tags(figure2_system, [0, 1, 2], unread)
        np.testing.assert_array_equal(blocked, [2])


class TestClassifyCollisions:
    def test_report_consistency(self, figure2_system):
        report = classify_collisions(figure2_system, [0, 1, 2])
        assert report.num_rtc == 0
        assert report.num_rrc == 2
        assert report.weight == 3
        np.testing.assert_array_equal(report.active, [0, 1, 2])

    def test_weight_matches_system(self, line_system):
        for active in ([0], [0, 1], [0, 2], [0, 1, 2]):
            report = classify_collisions(line_system, active)
            assert report.weight == line_system.weight(active)
