"""Tests for Reader and Tag entities."""

import numpy as np
import pytest

from repro.model import Reader, Tag


class TestReader:
    def test_valid(self):
        r = Reader(id=0, x=1, y=2, interference_radius=5, interrogation_radius=3)
        assert r.beta == pytest.approx(0.6)
        np.testing.assert_array_equal(r.position, [1, 2])

    def test_interrogation_cannot_exceed_interference(self):
        with pytest.raises(ValueError, match="must not exceed"):
            Reader(id=0, x=0, y=0, interference_radius=2, interrogation_radius=3)

    def test_equal_radii_allowed(self):
        r = Reader(id=0, x=0, y=0, interference_radius=2, interrogation_radius=2)
        assert r.beta == 1.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Reader(id=-1, x=0, y=0, interference_radius=2, interrogation_radius=1)

    def test_zero_radius_rejected(self):
        with pytest.raises(ValueError):
            Reader(id=0, x=0, y=0, interference_radius=0, interrogation_radius=0)

    def test_covers_boundary(self):
        r = Reader(id=0, x=0, y=0, interference_radius=4, interrogation_radius=2)
        assert r.covers((2.0, 0.0))
        assert not r.covers((2.1, 0.0))

    def test_interferes_at(self):
        r = Reader(id=0, x=0, y=0, interference_radius=4, interrogation_radius=2)
        assert r.interferes_at((4.0, 0.0))
        assert not r.interferes_at((4.1, 0.0))

    def test_frozen(self):
        r = Reader(id=0, x=0, y=0, interference_radius=4, interrogation_radius=2)
        with pytest.raises(AttributeError):
            r.x = 5


class TestTag:
    def test_valid(self):
        t = Tag(id=3, x=1.5, y=-2.5)
        np.testing.assert_array_equal(t.position, [1.5, -2.5])

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Tag(id=-1, x=0, y=0)

    def test_frozen(self):
        t = Tag(id=0, x=0, y=0)
        with pytest.raises(AttributeError):
            t.x = 1
