"""Tests for interference-graph construction and hop queries."""

import networkx as nx
import numpy as np
import pytest

from repro.model import (
    adjacency_lists,
    growth_profile,
    hop_distances,
    interference_graph,
    r_hop_ball,
)
from tests.conftest import make_random_system


class TestInterferenceGraph:
    def test_line_system_edges(self, line_system):
        g = interference_graph(line_system)
        assert set(g.nodes) == {0, 1, 2}
        assert set(g.edges) == {(0, 1)}

    def test_matches_conflict_matrix(self, paper_system):
        g = interference_graph(paper_system)
        conflict = paper_system.conflict
        assert g.number_of_edges() == int(np.triu(conflict, 1).sum())
        for u, v in g.edges:
            assert conflict[u, v]

    def test_adjacency_lists_match_graph(self, paper_system):
        g = interference_graph(paper_system)
        adj = adjacency_lists(paper_system)
        for i in range(paper_system.num_readers):
            assert sorted(g.neighbors(i)) == adj[i].tolist()


class TestHopDistances:
    @pytest.fixture
    def path_adj(self):
        # path graph 0-1-2-3-4
        return [
            np.array([1]),
            np.array([0, 2]),
            np.array([1, 3]),
            np.array([2, 4]),
            np.array([3]),
        ]

    def test_path_distances(self, path_adj):
        dist = hop_distances(path_adj, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_truncation(self, path_adj):
        dist = hop_distances(path_adj, 0, max_hops=2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_ball(self, path_adj):
        np.testing.assert_array_equal(r_hop_ball(path_adj, 2, 1), [1, 2, 3])
        np.testing.assert_array_equal(r_hop_ball(path_adj, 2, 0), [2])

    def test_ball_negative_radius(self, path_adj):
        with pytest.raises(ValueError):
            r_hop_ball(path_adj, 0, -1)

    def test_growth_profile(self, path_adj):
        # |N^0|=1, |N^1|=2, |N^2|=3 ... from an endpoint
        assert growth_profile(path_adj, 0, 4) == [1, 2, 3, 4, 5]

    def test_matches_networkx(self, paper_system):
        g = interference_graph(paper_system)
        adj = adjacency_lists(paper_system)
        for src in range(0, paper_system.num_readers, 7):
            ours = hop_distances(adj, src)
            theirs = nx.single_source_shortest_path_length(g, src)
            assert ours == dict(theirs)

    def test_disconnected_component(self, line_system):
        adj = adjacency_lists(line_system)
        dist = hop_distances(adj, 2)
        assert dist == {2: 0}  # reader 2 is isolated


class TestBoundedIndependence:
    def test_profile_monotone_and_bounded(self, paper_system):
        from repro.model.interference import bounded_independence_profile

        profile = bounded_independence_profile(
            paper_system, r_max=3, sample=10, seed=0
        )
        assert len(profile) == 4
        assert profile[0] == 1  # a single node is its own ball
        assert all(a <= b for a, b in zip(profile, profile[1:]))
        assert profile[-1] <= paper_system.num_readers

    def test_quadratic_growth_premise(self, paper_system):
        """The geometric interference graph should satisfy the
        growth-bounded premise of Theorems 3/5: f(r) = O(r²) — we check the
        generous envelope f(r) ≤ 8·(r+1)²."""
        from repro.model.interference import bounded_independence_profile

        profile = bounded_independence_profile(
            paper_system, r_max=3, sample=12, seed=1
        )
        for r, f in enumerate(profile):
            assert f <= 8 * (r + 1) ** 2, (r, f)

    def test_line_system(self, line_system):
        from repro.model.interference import bounded_independence_profile

        # balls: {v} at r=0 -> f=1; A-B ball at r=1 holds an IS of size 1
        # within {A,B}, but C's ball is just {C}; f(1) = 1
        profile = bounded_independence_profile(line_system, r_max=1)
        assert profile == [1, 1]

    def test_empty_system(self):
        from repro.model import RFIDSystem
        from repro.model.interference import bounded_independence_profile

        assert bounded_independence_profile(RFIDSystem([], []), 2) == [0, 0, 0]

    def test_validation(self, line_system):
        from repro.model.interference import bounded_independence_profile

        with pytest.raises(ValueError):
            bounded_independence_profile(line_system, -1)
