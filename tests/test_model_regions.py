"""Tests for monitored-region analytics."""

import numpy as np
import pytest

from repro.model import build_system
from repro.model.regions import (
    CoverageReport,
    _lens_area,
    coverage_report,
    pairwise_interrogation_overlap,
)
from tests.conftest import make_random_system


class TestLensArea:
    def test_disjoint(self):
        assert _lens_area(1, 1, 3) == 0.0

    def test_touching(self):
        assert _lens_area(1, 1, 2) == 0.0

    def test_contained(self):
        assert _lens_area(3, 1, 0.5) == pytest.approx(np.pi)

    def test_identical(self):
        assert _lens_area(2, 2, 0) == pytest.approx(np.pi * 4)

    def test_half_overlap_symmetry(self):
        assert _lens_area(2, 3, 2.5) == pytest.approx(_lens_area(3, 2, 2.5))

    def test_known_value(self):
        # two unit circles 1 apart: lens area = 2·acos(1/2) − (√3)/2
        want = 2 * np.arccos(0.5) - np.sqrt(3) / 2
        assert _lens_area(1, 1, 1) == pytest.approx(want)

    def test_monotone_in_distance(self):
        areas = [_lens_area(2, 2, d) for d in (0.0, 1.0, 2.0, 3.0, 4.0)]
        assert all(a >= b for a, b in zip(areas, areas[1:]))


class TestPairwiseOverlap:
    def test_diagonal_is_disk_area(self):
        system = build_system(
            np.array([[0.0, 0.0], [100.0, 0.0]]),
            np.array([4.0, 6.0]),
            np.array([2.0, 3.0]),
            np.empty((0, 2)),
        )
        m = pairwise_interrogation_overlap(system)
        assert m[0, 0] == pytest.approx(np.pi * 4)
        assert m[1, 1] == pytest.approx(np.pi * 9)
        assert m[0, 1] == 0.0  # far apart

    def test_symmetric(self):
        system = make_random_system(6, 0, 25, 8, 5, seed=0)
        m = pairwise_interrogation_overlap(system)
        np.testing.assert_allclose(m, m.T)


class TestCoverageReport:
    @pytest.fixture
    def single_disk_system(self):
        # one reader, interrogation radius 10, centered in a 40x40 region
        return build_system(
            np.array([[20.0, 20.0]]),
            np.array([10.0]),
            np.array([10.0]),
            np.empty((0, 2)),
        )

    def test_single_disk_fraction(self, single_disk_system):
        report = coverage_report(single_disk_system, side=40, samples=40_000, seed=0)
        want = np.pi * 100 / 1600
        assert report.monitored_fraction == pytest.approx(want, abs=0.01)
        assert report.overlap_fraction == 0.0
        assert report.monitored_area == pytest.approx(np.pi * 100, rel=0.06)

    def test_histogram_sums_to_one(self):
        system = make_random_system(10, 0, 40, 10, 6, seed=1)
        report = coverage_report(system, side=40, samples=5000, seed=0)
        assert sum(report.coverage_histogram.values()) == pytest.approx(1.0)

    def test_overlap_le_monitored(self):
        system = make_random_system(10, 0, 40, 10, 6, seed=1)
        report = coverage_report(system, side=40, samples=5000, seed=0)
        assert report.overlap_fraction <= report.monitored_fraction

    def test_mean_depth_consistent(self):
        system = make_random_system(10, 0, 40, 10, 6, seed=1)
        report = coverage_report(system, side=40, samples=5000, seed=0)
        recomputed = sum(k * v for k, v in report.coverage_histogram.items())
        assert report.mean_coverage_depth == pytest.approx(recomputed)

    def test_exclusive_fractions(self, single_disk_system):
        report = coverage_report(single_disk_system, side=40, samples=20_000, seed=0)
        assert report.exclusive_fraction_by_reader.shape == (1,)
        assert report.exclusive_fraction_by_reader[0] == pytest.approx(
            report.monitored_fraction
        )

    def test_empty_system(self):
        from repro.model import RFIDSystem

        report = coverage_report(RFIDSystem([], []), side=10, samples=100, seed=0)
        assert report.monitored_fraction == 0.0
        assert report.coverage_histogram == {0: 1.0}

    def test_deterministic(self, single_disk_system):
        a = coverage_report(single_disk_system, side=40, samples=1000, seed=5)
        b = coverage_report(single_disk_system, side=40, samples=1000, seed=5)
        assert a.monitored_fraction == b.monitored_fraction

    def test_validation(self, single_disk_system):
        with pytest.raises(ValueError):
            coverage_report(single_disk_system, side=0)
        with pytest.raises(ValueError):
            coverage_report(single_disk_system, side=10, samples=0)

    def test_rrc_exposed_area(self):
        # two heavily overlapping same-size disks
        system = build_system(
            np.array([[20.0, 20.0], [22.0, 20.0]]),
            np.array([10.0, 10.0]),
            np.array([10.0, 10.0]),
            np.empty((0, 2)),
        )
        report = coverage_report(system, side=40, samples=40_000, seed=0)
        want = _lens_area(10, 10, 2)
        assert report.rrc_exposed_area == pytest.approx(want, rel=0.08)
