"""Tests for ReadState."""

import numpy as np
import pytest

from repro.model import ReadState


class TestConstruction:
    def test_all_unread_default(self):
        s = ReadState(5)
        assert s.num_unread() == 5
        assert s.num_read() == 0
        assert not s.all_read()

    def test_zero_tags(self):
        s = ReadState(0)
        assert s.all_read()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ReadState(-1)

    def test_initial_mask(self):
        s = ReadState(3, unread=np.array([True, False, True]))
        assert s.num_unread() == 2

    def test_initial_mask_shape_checked(self):
        with pytest.raises(ValueError):
            ReadState(3, unread=np.array([True]))

    def test_initial_mask_copied(self):
        mask = np.array([True, True])
        s = ReadState(2, unread=mask)
        mask[0] = False
        assert s.num_unread() == 2


class TestMarkRead:
    def test_basic(self):
        s = ReadState(4)
        assert s.mark_read([0, 2]) == 2
        np.testing.assert_array_equal(s.unread_indices(), [1, 3])
        np.testing.assert_array_equal(s.read_indices(), [0, 2])

    def test_idempotent_count(self):
        s = ReadState(4)
        s.mark_read([0])
        assert s.mark_read([0, 1]) == 1  # only tag 1 is newly read

    def test_empty_noop(self):
        s = ReadState(4)
        assert s.mark_read([]) == 0
        assert s.num_unread() == 4

    def test_out_of_range(self):
        s = ReadState(4)
        with pytest.raises(IndexError):
            s.mark_read([4])
        with pytest.raises(IndexError):
            s.mark_read([-1])

    def test_all_read(self):
        s = ReadState(2)
        s.mark_read([0, 1])
        assert s.all_read()

    def test_is_unread(self):
        s = ReadState(2)
        s.mark_read([1])
        assert s.is_unread(0) and not s.is_unread(1)


class TestCopy:
    def test_copy_is_independent(self):
        s = ReadState(3)
        c = s.copy()
        s.mark_read([0])
        assert c.num_unread() == 3
        assert s.num_unread() == 2

    def test_unread_mask_is_copy(self):
        s = ReadState(2)
        mask = s.unread_mask
        mask[0] = False
        assert s.num_unread() == 2
