"""Tests for RFIDSystem — coverage, feasibility and the weight oracle.

Includes the paper's Figure 2 example verbatim: fewer readers can serve
more tags, the key non-monotonicity of the weight function.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.model import RFIDSystem, Reader, Tag, build_system
from tests.conftest import system_strategy


class TestConstruction:
    def test_id_mismatch_reader(self):
        readers = [Reader(id=1, x=0, y=0, interference_radius=2, interrogation_radius=1)]
        with pytest.raises(ValueError, match="reader at index 0"):
            RFIDSystem(readers, [])

    def test_id_mismatch_tag(self):
        readers = [Reader(id=0, x=0, y=0, interference_radius=2, interrogation_radius=1)]
        tags = [Tag(id=5, x=0, y=0)]
        with pytest.raises(ValueError, match="tag at index 0"):
            RFIDSystem(readers, tags)

    def test_empty_system(self):
        s = RFIDSystem([], [])
        assert s.num_readers == 0 and s.num_tags == 0
        assert s.weight([]) == 0
        assert s.is_feasible([])

    def test_build_system_radii_shape(self):
        with pytest.raises(ValueError):
            build_system(np.zeros((2, 2)), np.array([1.0]), np.array([1.0, 1.0]), np.empty((0, 2)))

    def test_accessors(self, line_system):
        assert line_system.num_readers == 3
        assert line_system.num_tags == 4
        assert line_system.reader(0).id == 0
        assert line_system.tag(3).id == 3
        assert line_system.reader_positions.shape == (3, 2)
        assert line_system.interference_radii.shape == (3,)


class TestCoverage:
    def test_incidence(self, line_system):
        cov = line_system.coverage
        assert cov.shape == (4, 3)
        assert cov[0, 0] and not cov[0, 1] and not cov[0, 2]
        assert cov[1, 1] and not cov[1, 0]
        assert cov[2, 2]
        assert not cov[3].any()  # stranded tag

    def test_covered_by_any(self, line_system):
        np.testing.assert_array_equal(
            line_system.covered_by_any(), [True, True, True, False]
        )


class TestFeasibility:
    def test_conflicting_pair(self, line_system):
        assert not line_system.independent(0, 1)
        assert line_system.independent(0, 2)
        assert not line_system.is_feasible([0, 1])
        assert line_system.is_feasible([0, 2])
        assert line_system.is_feasible([1, 2])

    def test_singletons_and_empty_feasible(self, line_system):
        assert line_system.is_feasible([])
        for i in range(3):
            assert line_system.is_feasible([i])

    def test_independent_self_raises(self, line_system):
        with pytest.raises(ValueError):
            line_system.independent(1, 1)

    def test_duplicates_collapse(self, line_system):
        assert line_system.is_feasible([2, 2])


class TestOperationalReaders:
    def test_rtc_pair_both_suffer(self, line_system):
        # A and B are inside each other's disks: both non-operational
        np.testing.assert_array_equal(
            line_system.operational_readers([0, 1]), []
        )

    def test_far_reader_unaffected(self, line_system):
        np.testing.assert_array_equal(
            line_system.operational_readers([0, 1, 2]), [2]
        )

    def test_feasible_set_all_operational(self, line_system):
        np.testing.assert_array_equal(
            line_system.operational_readers([0, 2]), [0, 2]
        )


class TestWeight:
    def test_singletons(self, line_system):
        assert line_system.weight([0]) == 1
        assert line_system.weight([1]) == 1
        assert line_system.weight([2]) == 1

    def test_feasible_pair_adds(self, line_system):
        assert line_system.weight([0, 2]) == 2

    def test_rtc_pair_reads_nothing(self, line_system):
        assert line_system.weight([0, 1]) == 0

    def test_rtc_pair_with_outsider(self, line_system):
        assert line_system.weight([0, 1, 2]) == 1

    def test_unread_mask_respected(self, line_system):
        unread = np.array([False, True, True, True])
        assert line_system.weight([0, 2], unread) == 1
        got = line_system.well_covered_tags([0, 2], unread)
        np.testing.assert_array_equal(got, [2])

    def test_unread_mask_shape_checked(self, line_system):
        with pytest.raises(ValueError):
            line_system.weight([0], np.array([True]))

    def test_out_of_range_reader(self, line_system):
        with pytest.raises(IndexError):
            line_system.weight([7])

    def test_exclusive_coverage_counts(self, figure2_system):
        counts = figure2_system.exclusive_coverage_counts([0, 1, 2])
        # A exclusively covers tag1; B tag5; C tag4
        np.testing.assert_array_equal(counts, [1, 1, 1])


class TestFigure2:
    """The paper's Figure 2: scheduling fewer readers reads more tags."""

    def test_all_three_pairwise_independent(self, figure2_system):
        assert figure2_system.is_feasible([0, 1, 2])

    def test_full_set_weight_is_3(self, figure2_system):
        assert figure2_system.weight([0, 1, 2]) == 3

    def test_dropping_b_raises_weight_to_4(self, figure2_system):
        assert figure2_system.weight([0, 2]) == 4

    def test_overlap_tags_blocked_by_rrc(self, figure2_system):
        well = figure2_system.well_covered_tags([0, 1, 2])
        np.testing.assert_array_equal(well, [0, 3, 4])  # tags 1, 4, 5 (0-based)

    def test_weight_not_monotone(self, figure2_system):
        # the defining property: w(X ∪ {B}) < w(X)
        assert figure2_system.weight([0, 1, 2]) < figure2_system.weight([0, 2])


class TestWeightProperties:
    @given(system=system_strategy())
    @settings(max_examples=40, deadline=None)
    def test_weight_bounds(self, system):
        n = system.num_readers
        active = list(range(0, n, 2))
        w = system.weight(active)
        assert 0 <= w <= system.num_tags

    @given(system=system_strategy())
    @settings(max_examples=40, deadline=None)
    def test_weight_of_empty_is_zero(self, system):
        assert system.weight([]) == 0

    @given(system=system_strategy(max_readers=8))
    @settings(max_examples=40, deadline=None)
    def test_subadditivity_for_feasible_union(self, system):
        """w(X1 ∪ X2) ≤ w(X1) + w(X2) — the non-additivity direction the
        paper's Section IV calls out."""
        n = system.num_readers
        x1 = [i for i in range(n) if i % 2 == 0]
        x2 = [i for i in range(n) if i % 2 == 1]
        union = sorted(set(x1) | set(x2))
        if system.is_feasible(union):
            assert system.weight(union) <= system.weight(x1) + system.weight(x2)

    @given(system=system_strategy(max_readers=8))
    @settings(max_examples=40, deadline=None)
    def test_well_covered_owner_covers_tag(self, system):
        active = list(range(system.num_readers))
        for t in system.well_covered_tags(active):
            assert system.coverage[t, active].sum() == 1
