"""Tests for the bitset weight oracle — must agree exactly with the NumPy
oracle on feasible sets, under every unread mask."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import BitsetWeightOracle
from tests.conftest import make_random_system, system_strategy


@pytest.fixture
def system():
    return make_random_system(10, 80, 30, 8, 5, seed=1)


class TestAgainstNumpyOracle:
    def test_solo_weights(self, system):
        oracle = BitsetWeightOracle(system)
        for i in range(system.num_readers):
            assert oracle.solo_weight(i) == system.weight([i])

    def test_feasible_sets(self, system):
        oracle = BitsetWeightOracle(system)
        rng = np.random.default_rng(0)
        for _ in range(50):
            candidates = rng.choice(system.num_readers, size=4, replace=False)
            chosen = []
            for c in candidates:
                if not chosen or not system.conflict[c, chosen].any():
                    chosen.append(int(c))
            assert oracle.weight_of(chosen) == system.weight(chosen)

    def test_unread_mask(self, system):
        rng = np.random.default_rng(1)
        unread = rng.random(system.num_tags) < 0.5
        oracle = BitsetWeightOracle(system, unread)
        for i in range(system.num_readers):
            assert oracle.solo_weight(i) == system.weight([i], unread)

    def test_bad_mask_shape(self, system):
        with pytest.raises(ValueError):
            BitsetWeightOracle(system, np.array([True]))

    @given(system=system_strategy(max_readers=8, max_tags=30), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, system, data):
        oracle = BitsetWeightOracle(system)
        n = system.num_readers
        subset = data.draw(
            st.lists(st.integers(0, n - 1), max_size=n, unique=True)
        )
        # keep only a feasible prefix
        chosen = []
        for c in subset:
            if not chosen or not system.conflict[c, chosen].any():
                chosen.append(c)
        assert oracle.weight_of(chosen) == system.weight(chosen)


class TestIncrementalState:
    def test_push_pop_roundtrip(self, system):
        oracle = BitsetWeightOracle(system)
        base = oracle.current_weight()
        oracle.push(0)
        w1 = oracle.current_weight()
        assert w1 == oracle.weight_of([0])
        oracle.push(3)
        oracle.pop()
        assert oracle.current_weight() == w1
        oracle.pop()
        assert oracle.current_weight() == base == 0

    def test_pop_empty_raises(self, system):
        oracle = BitsetWeightOracle(system)
        with pytest.raises(IndexError):
            oracle.pop()

    def test_depth(self, system):
        oracle = BitsetWeightOracle(system)
        assert oracle.depth == 0
        oracle.push(0)
        oracle.push(1)
        assert oracle.depth == 2
        oracle.reset()
        assert oracle.depth == 0

    def test_incremental_matches_scratch(self, system):
        oracle = BitsetWeightOracle(system)
        chosen = []
        for c in (0, 2, 5, 7):
            if not chosen or not system.conflict[c, chosen].any():
                oracle.push(c)
                chosen.append(c)
                assert oracle.current_weight() == oracle.weight_of(chosen)


class TestUpperBound:
    def test_bound_dominates_all_extensions(self, system):
        oracle = BitsetWeightOracle(system)
        oracle.push(0)
        candidates = [i for i in range(1, system.num_readers)]
        ub = oracle.upper_bound_with(candidates)
        # check a sample of feasible extensions
        rng = np.random.default_rng(2)
        for _ in range(40):
            extra = rng.choice(candidates, size=3, replace=False)
            chosen = [0]
            for c in extra:
                if not system.conflict[c, chosen].any():
                    chosen.append(int(c))
            assert oracle.weight_of(chosen) <= ub

    def test_bound_with_no_candidates_is_current(self, system):
        oracle = BitsetWeightOracle(system)
        oracle.push(0)
        assert oracle.upper_bound_with([]) == oracle.current_weight()


class TestFromMasks:
    def test_manual_masks(self):
        # two readers: reader 10 covers tags {0,1}, reader 20 covers {1,2}
        oracle = BitsetWeightOracle.from_masks(
            {10: 0b011, 20: 0b110}, unread_mask=0b111
        )
        assert oracle.solo_weight(10) == 2
        assert oracle.solo_weight(20) == 2
        # union: tag 1 covered twice → only tags 0 and 2 count
        assert oracle.weight_of([10, 20]) == 2

    def test_unread_mask_limits(self):
        oracle = BitsetWeightOracle.from_masks({1: 0b111}, unread_mask=0b001)
        assert oracle.solo_weight(1) == 1

    def test_well_covered_mask(self):
        oracle = BitsetWeightOracle.from_masks(
            {0: 0b011, 1: 0b110}, unread_mask=0b111
        )
        assert oracle.well_covered_mask([0, 1]) == 0b101
