"""Tests for the BENCH trajectory auditor and the ``bench compare`` CLI."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.compare import (
    DEFAULT_BENCH_FILES,
    audit_against,
    audit_trajectory,
    load_committed_bench,
    run_compare,
)

REPO = Path(__file__).resolve().parent.parent


def _run(label="L", solver="s", bench="mcs", sets=10, wall=0.01, version="1",
         **metrics):
    """A minimal run record (enough for the auditor, not schema-complete)."""
    return {
        "bench": bench,
        "label": label,
        "solver": solver,
        "scenario": {},
        "metrics": {"sets_evaluated": sets, **metrics},
        "wall_clock_s": wall,
        "repro_version": version,
        "schema_version": 1,
    }


def _doc(*runs, bench="mcs"):
    return {
        "format": "repro.bench",
        "version": 1,
        "benchmark": bench,
        "runs": list(runs),
    }


class TestAuditTrajectory:
    def test_identical_counters_are_clean(self):
        doc = _doc(_run(sets=10), _run(sets=10), _run(sets=10))
        assert audit_trajectory(doc) == []

    def test_counter_drift_is_an_error(self):
        doc = _doc(_run(sets=10), _run(sets=11))
        findings = audit_trajectory(doc)
        assert [f.kind for f in findings] == ["counter_drift"]
        assert findings[0].severity == "error"
        assert "sets_evaluated" in findings[0].detail

    def test_allowlisted_label_downgrades_to_warning(self):
        doc = _doc(_run(sets=10), _run(sets=11))
        findings = audit_trajectory(doc, allow_labels=["L"])
        assert [f.severity for f in findings] == ["warning"]

    def test_disappearing_counter_is_drift(self):
        base = _run(sets=10, slots_to_completion=3)
        nxt = _run(sets=10)
        findings = audit_trajectory(_doc(base, nxt))
        assert [f.kind for f in findings] == ["counter_drift"]
        assert "disappeared" in findings[0].detail

    def test_groups_are_independent(self):
        doc = _doc(
            _run(label="a", sets=10),
            _run(label="b", sets=99),
            _run(label="a", sets=10),
            _run(label="b", sets=99),
        )
        assert audit_trajectory(doc) == []

    def test_wall_regression_is_warning_by_default(self):
        doc = _doc(_run(wall=0.2), _run(sets=10, wall=0.9))
        findings = audit_trajectory(doc)
        assert [(f.kind, f.severity) for f in findings] == [
            ("wall_regression", "warning")
        ]
        strict = audit_trajectory(doc, strict_wall=True)
        assert [f.severity for f in strict] == ["error"]

    def test_wall_floor_swallows_fast_runs(self):
        # 4x slower but under the absolute floor: micro-benchmark jitter.
        doc = _doc(_run(wall=0.01), _run(wall=0.04))
        assert audit_trajectory(doc) == []


class TestAuditAgainst:
    def test_appended_identical_run_is_clean(self):
        committed = _doc(_run(sets=10))
        working = _doc(_run(sets=10), _run(sets=10, wall=0.5))
        assert audit_against(committed, working) == []

    def test_appended_drifted_run_is_an_error(self):
        committed = _doc(_run(sets=10))
        working = _doc(_run(sets=10), _run(sets=12))
        findings = audit_against(committed, working)
        assert [(f.kind, f.severity) for f in findings] == [
            ("counter_drift", "error")
        ]

    def test_history_rewrite_is_an_error(self):
        committed = _doc(_run(sets=10), _run(sets=10))
        working = _doc(_run(sets=11), _run(sets=11))
        findings = audit_against(committed, working)
        assert [f.kind for f in findings] == ["history_rewrite"]

    def test_truncated_history_is_a_rewrite(self):
        committed = _doc(_run(sets=10), _run(sets=10))
        working = _doc(_run(sets=10))
        assert [f.kind for f in audit_against(committed, working)] == [
            "history_rewrite"
        ]

    def test_new_label_starts_a_fresh_trajectory(self):
        committed = _doc(_run(label="old", sets=10))
        working = _doc(_run(label="old", sets=10), _run(label="new", sets=77))
        assert audit_against(committed, working) == []


class TestCommittedRepoTrajectories:
    """The acceptance bar: the committed BENCH files audit clean."""

    @pytest.mark.parametrize("name", DEFAULT_BENCH_FILES)
    def test_committed_file_audits_clean(self, name):
        data = json.loads((REPO / name).read_text())
        errors = [
            f for f in audit_trajectory(data) if f.severity == "error"
        ]
        assert errors == [], [f.format() for f in errors]

    def test_run_compare_exits_zero_on_committed_files(self):
        code, report = run_compare([REPO / name for name in DEFAULT_BENCH_FILES])
        assert code == 0, report
        assert "0 error(s)" in report

    def test_load_committed_bench_reads_head(self):
        committed = load_committed_bench(REPO / "BENCH_mcs.json", rev="HEAD")
        if committed is None:
            pytest.skip("not a git checkout with BENCH_mcs.json at HEAD")
        assert committed["benchmark"] == "mcs"
        assert committed["runs"]

    def test_load_committed_bench_outside_git_is_none(self, tmp_path):
        path = tmp_path / "BENCH_mcs.json"
        shutil.copy(REPO / "BENCH_mcs.json", path)
        assert load_committed_bench(path, rev="HEAD") is None


class TestCompareCli:
    def _perturbed_copy(self, tmp_path):
        """A copy of the committed mcs trajectory with one work counter
        nudged — the acceptance scenario for a non-zero exit."""
        path = tmp_path / "BENCH_mcs.json"
        data = json.loads((REPO / "BENCH_mcs.json").read_text())
        data["runs"][-1]["metrics"]["sets_evaluated"] += 1
        path.write_text(json.dumps(data))
        return path

    def test_exit_zero_on_committed_files(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["bench", "compare"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_perturbed_sets_evaluated_exits_nonzero(self, tmp_path, capsys):
        path = self._perturbed_copy(tmp_path)
        assert main(["bench", "compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "sets_evaluated" in out

    def test_allow_flag_downgrades_to_exit_zero(self, tmp_path, capsys):
        path = self._perturbed_copy(tmp_path)
        label = json.loads(path.read_text())["runs"][-1]["label"]
        assert main(["bench", "compare", str(path), "--allow", label]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["bench", "compare", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_schema_invalid_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_mcs.json"
        bad.write_text(json.dumps({"format": "wrong", "runs": []}))
        assert main(["bench", "compare", str(bad)]) == 2
        capsys.readouterr()

    def test_against_head_committed_on_clean_checkout(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        if load_committed_bench(REPO / "BENCH_mcs.json") is None:
            pytest.skip("not a git checkout")
        assert main(["bench", "compare", "--against", "HEAD-committed"]) == 0
        capsys.readouterr()

    def test_bench_subcommand_grammar_is_untouched(self, tmp_path, capsys):
        """The compare interception must not break ``bench --dry-run``."""
        assert main([
            "bench", "--quick", "--dry-run", "--out-dir", str(tmp_path)
        ]) == 0
        assert "dry run" in capsys.readouterr().out
