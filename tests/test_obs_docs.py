"""Docs/code contract tests for the observability layer.

``docs/observability.md`` is the telemetry contract: its event-taxonomy and
schema-field tables must match the code exactly (both directions), and the
cross-references in every docs page must resolve to real modules/files.
Companion of ``tests/test_docstrings.py``, which enforces docstrings on the
code side.
"""

import importlib
import re
from pathlib import Path

import pytest

from repro.obs.events import EVENT_TYPES
from repro.obs.export import METRIC_FIELDS, RUN_FIELDS
from repro.obs.spans import SPAN_NAMES
from repro.perf.backends import KERNEL_METHODS, WeightKernel, available_backends

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "observability.md"
BACKENDS_DOC = REPO / "docs" / "backends.md"

DOC_PAGES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]


def _section(text: str, heading: str) -> str:
    """The body of the markdown section titled *heading* (any level), up to
    the next heading of the same or shallower level."""
    pattern = rf"^(#+)\s+{re.escape(heading)}\s*$"
    match = re.search(pattern, text, flags=re.MULTILINE)
    assert match, f"section {heading!r} missing from {DOC}"
    level = len(match.group(1))
    rest = text[match.end():]
    nxt = re.search(rf"^#{{1,{level}}}\s", rest, flags=re.MULTILINE)
    return rest[: nxt.start()] if nxt else rest


def _table_names(section: str) -> set:
    """First-column backticked identifiers of every markdown table row."""
    return set(re.findall(r"^\|\s*`([^`|]+)`", section, flags=re.MULTILINE))


class TestObservabilityContract:
    """The documented lists are diffed against the schema, both ways."""

    def test_event_taxonomy_matches_code(self):
        documented = _table_names(_section(DOC.read_text(), "Event taxonomy"))
        in_code = {cls.__name__ for cls in EVENT_TYPES}
        assert documented == in_code, (
            f"docs-only: {documented - in_code}; "
            f"undocumented: {in_code - documented}"
        )

    def test_span_taxonomy_matches_code(self):
        documented = _table_names(_section(DOC.read_text(), "Span taxonomy"))
        in_code = set(SPAN_NAMES)
        assert documented == in_code, (
            f"docs-only: {documented - in_code}; "
            f"undocumented: {in_code - documented}"
        )

    def test_run_record_fields_match_schema(self):
        documented = _table_names(_section(DOC.read_text(), "Run record fields"))
        assert documented == set(RUN_FIELDS), (
            f"docs-only: {documented - set(RUN_FIELDS)}; "
            f"undocumented: {set(RUN_FIELDS) - documented}"
        )

    def test_metric_fields_match_schema(self):
        documented = _table_names(_section(DOC.read_text(), "Metric fields"))
        assert documented == set(METRIC_FIELDS), (
            f"docs-only: {documented - set(METRIC_FIELDS)}; "
            f"undocumented: {set(METRIC_FIELDS) - documented}"
        )

    def test_bench_runs_cover_only_documented_fields(self):
        """A real quick-matrix record stays inside the documented schema."""
        from repro.obs.bench import QUICK_MATRIX, run_mcs_bench

        record = run_mcs_bench(QUICK_MATRIX[0])
        assert set(record) <= set(RUN_FIELDS)
        assert set(record["metrics"]) <= set(METRIC_FIELDS)


class TestBackendsContract:
    """``docs/backends.md`` is diffed against the kernel interface and the
    backend registry, both directions — same idiom as the telemetry
    contract above."""

    def test_kernel_method_table_matches_code(self):
        documented = _table_names(
            _section(BACKENDS_DOC.read_text(), "Kernel methods")
        )
        assert documented == set(KERNEL_METHODS), (
            f"docs-only: {documented - set(KERNEL_METHODS)}; "
            f"undocumented: {set(KERNEL_METHODS) - documented}"
        )

    def test_kernel_methods_match_abstract_interface(self):
        assert set(KERNEL_METHODS) == set(WeightKernel.__abstractmethods__)

    def test_backend_table_matches_registry(self):
        documented = _table_names(_section(BACKENDS_DOC.read_text(), "Backends"))
        assert documented == set(available_backends()), (
            f"docs-only: {documented - set(available_backends())}; "
            f"unregistered: {set(available_backends()) - documented}"
        )


def test_shard_fault_matrix_identical_in_both_pages():
    """The shard × fault composition matrix is stated in both
    ``docs/robustness.md`` and ``docs/scale.md``; the two copies must stay
    literally identical (same rows, same guarantees)."""

    def matrix(page):
        text = (REPO / "docs" / page).read_text()
        section = _section(text, "Shard × fault composition")
        rows = [l for l in section.splitlines() if l.startswith("|")]
        assert len(rows) >= 6, f"{page}: composition matrix missing rows"
        return rows

    assert matrix("robustness.md") == matrix("scale.md")


def _linked_pages(text: str) -> set:
    """Filenames of every ``docs/*.md`` page linked from *text* (markdown
    link targets, with or without the ``docs/`` prefix)."""
    targets = re.findall(r"\]\(([^)#\s]+\.md)", text)
    return {Path(t).name for t in targets}


def test_every_docs_page_linked_from_readme_and_index():
    """The repo ``README.md`` and the ``docs/README.md`` index must both
    link every documentation page — no orphaned docs."""
    pages = {p.name for p in (REPO / "docs").glob("*.md")} - {"README.md"}
    for source in (REPO / "README.md", REPO / "docs" / "README.md"):
        missing = pages - _linked_pages(source.read_text())
        assert not missing, f"{source}: unlinked docs pages: {sorted(missing)}"


def _resolve_module_ref(ref: str) -> bool:
    """True iff a dotted ``repro.…`` reference resolves to a module or an
    attribute chain hanging off one."""
    parts = ref.split(".")
    obj = None
    for i in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:i]))
        except ImportError:
            continue
        for attr in parts[i:]:
            obj = getattr(obj, attr, None)
            if obj is None:
                return False
        return True
    return False


def _candidate_paths(ref: str):
    yield REPO / ref
    yield REPO / "src" / "repro" / ref
    yield REPO / "docs" / ref
    yield REPO / "tests" / ref
    yield REPO / "benchmarks" / ref


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_docs_cross_references_resolve(page):
    """Every backticked ``repro.…`` dotted reference and every backticked
    ``*.py`` / ``*.md`` path in the docs must point at something real."""
    text = page.read_text()
    broken = []
    for token in re.findall(r"`([^`\n]+)`", text):
        token = token.strip().rstrip("()")
        if re.fullmatch(r"repro(\.[A-Za-z_][A-Za-z0-9_]*)+", token):
            if not _resolve_module_ref(token):
                broken.append(token)
        elif re.fullmatch(r"[\w./-]+\.(py|md)", token):
            if not any(p.exists() for p in _candidate_paths(token)):
                broken.append(token)
    assert not broken, f"{page.name}: dangling references: {broken}"
