"""Tests for the obs subsystem: recorder, collectors, export, bench CLI."""

import json

import pytest

from repro.faults import FaultPlan

from repro.cli import main
from repro.core import get_solver, greedy_covering_schedule
from repro.deployment import Scenario
from repro.obs import (
    EVENT_TYPES,
    NULL_RECORDER,
    CandidateEvaluation,
    Recorder,
    RunCollector,
    SlotEnd,
    SlotStart,
    TraceRecorder,
    get_recorder,
    load_bench,
    merge_run,
    recording,
    run_record,
    set_recorder,
    validate_run,
)
from repro.obs.bench import QUICK_MATRIX, run_mcs_bench, run_oneshot_bench

SMALL = Scenario(
    num_readers=10,
    num_tags=80,
    side=40.0,
    lambda_interference=8,
    lambda_interrogation=5,
    seed=7,
)


@pytest.fixture(scope="module")
def system():
    return SMALL.build()


class _BoobyTrap(Recorder):
    """Disabled recorder whose emit must never be reached."""

    enabled = False

    def emit(self, event):
        raise AssertionError(f"disabled recorder received {event!r}")


class TestNullRecorderOverhead:
    def test_default_recorder_is_null_and_disabled(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_null_emit_is_noop(self):
        NULL_RECORDER.emit(SlotStart(slot=0, unread_tags=1))  # must not raise

    def test_disabled_recorder_never_computes(self, system):
        """The whole instrumented stack must skip event construction when
        tracing is off — a booby-trapped disabled recorder proves no site
        calls emit()."""
        with recording(_BoobyTrap()):
            schedule = greedy_covering_schedule(
                system, get_solver("exact"), linklayer="aloha", seed=0
            )
        assert schedule.complete

    def test_disabled_recorder_never_computes_under_faults(self, system):
        """The fault-tolerant driver (and every span site it crosses) must
        also skip event construction when tracing is off."""
        plan = FaultPlan.uniform_flaky(
            system.num_readers, 0.2, miss_rate=0.1, seed=5
        )
        with recording(_BoobyTrap()):
            schedule = greedy_covering_schedule(
                system,
                get_solver("ghc"),
                linklayer="aloha",
                seed=0,
                faults=plan,
                max_slots=4000,
            )
        assert schedule.tags_read_total > 0

    def test_disabled_recorder_never_computes_in_sweep_and_distsim(self, system):
        """Sweep and distsim span sites stay silent when tracing is off."""
        from repro.experiments.sweep import run_sweep

        with recording(_BoobyTrap()):
            get_solver("distributed")(system, None, 0)
            run_sweep("x", [1.0], lambda v, s: {"m": v + s}, seeds=[0])

    def test_disabled_path_matches_traced_results(self, system):
        """Tracing must be purely observational: identical schedules with
        and without a collector installed."""
        plain = greedy_covering_schedule(system, get_solver("ptas", k=2), seed=0)
        with recording(RunCollector()):
            traced = greedy_covering_schedule(
                system, get_solver("ptas", k=2), seed=0
            )
        assert plain.reads_per_slot() == traced.reads_per_slot()
        assert plain.complete == traced.complete


class TestRecorderInstallation:
    def test_recording_restores_previous(self):
        outer = TraceRecorder()
        with recording(outer):
            assert get_recorder() is outer
            with recording(TraceRecorder()) as inner:
                assert get_recorder() is inner
            assert get_recorder() is outer
        assert get_recorder() is NULL_RECORDER

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(TraceRecorder()):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_restores_null(self):
        previous = set_recorder(TraceRecorder())
        assert previous is NULL_RECORDER
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_trace_recorder_keeps_event_order(self, system):
        with recording(TraceRecorder()) as rec:
            greedy_covering_schedule(system, get_solver("exact"), seed=0)
        kinds = [type(e) for e in rec.events]
        assert kinds.index(SlotStart) < kinds.index(SlotEnd)
        assert all(isinstance(e, EVENT_TYPES) for e in rec.events)

    def test_trace_recorder_caps_buffer_and_counts_drops(self, system):
        with recording(TraceRecorder(max_events=5)) as rec:
            greedy_covering_schedule(system, get_solver("exact"), seed=0)
        assert len(rec.events) == 5
        assert rec.dropped_events > 0
        uncapped = TraceRecorder()
        with recording(uncapped):
            greedy_covering_schedule(system, get_solver("exact"), seed=0)
        assert len(uncapped.events) == 5 + rec.dropped_events
        assert [type(e) for e in rec.events] == [
            type(e) for e in uncapped.events[:5]
        ]

    def test_trace_recorder_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_events"):
            TraceRecorder(max_events=0)


class TestRunCollector:
    def test_schedule_aggregation_matches_result(self, system):
        with recording(RunCollector()) as col:
            schedule = greedy_covering_schedule(system, get_solver("exact"), seed=0)
        assert col.counters["slots"] == schedule.size
        assert col.counters["tags_read"] == schedule.tags_read_total
        assert col.counters["solver_calls"] == schedule.size
        assert col.tags_per_slot == schedule.reads_per_slot()
        assert col.schedule_complete == schedule.complete
        assert col.counters["sets_evaluated"] > 0
        assert len(col.sets_per_slot) == schedule.size
        assert sum(col.sets_per_slot) == col.counters["sets_evaluated"]
        assert col.solver_times.count("exact") == schedule.size
        assert col.solver_wall_clock_s > 0.0

    def test_linklayer_events_aggregate(self, system):
        with recording(RunCollector()) as col:
            schedule = greedy_covering_schedule(
                system, get_solver("exact"), linklayer="aloha", seed=0
            )
        assert col.counters["linklayer_micro_slots"] == schedule.total_micro_slots
        assert col.counters["linklayer_work"] >= col.counters["linklayer_micro_slots"]

    def test_distributed_solver_emits_distsim_rounds(self, system):
        with recording(RunCollector()) as col:
            get_solver("distributed")(system, None, 0)
        assert col.counters["distsim_rounds"] > 0
        assert col.counters["distsim_messages"] > 0

    def test_sets_by_context_contexts(self, system):
        with recording(RunCollector()) as col:
            get_solver("ptas", k=2)(system, None, 0)
            get_solver("localsearch", iterations=50, restarts=1)(system, None, 0)
        assert "ptas.dp_cells" in col.sets_by_context
        assert "exact.bnb" in col.sets_by_context  # PTAS leaf solves
        assert "localsearch.moves" in col.sets_by_context
        assert sum(col.sets_by_context.values()) == col.counters["sets_evaluated"]

    def test_sweep_points_recorded(self):
        from repro.experiments.sweep import run_sweep

        with recording(RunCollector()) as col:
            run_sweep("x", [1.0, 2.0], lambda v, s: {"m": v + s}, seeds=[0, 1])
        assert col.counters["sweep_points"] == 4
        assert col.sweep_times.count("x") == 4

    def test_unknown_events_ignored(self):
        col = RunCollector()
        col.emit(object())  # must not raise
        assert col.counters["slots"] == 0

    def test_unknown_events_counted_but_not_exported(self, system):
        """Foreign events tick the diagnostic ``ignored_events`` tally; span
        events are structural and do not — and neither reaches summary()."""
        col = RunCollector()
        col.emit(object())
        col.emit(object())
        assert col.ignored_events == 2
        with recording(RunCollector()) as traced:
            greedy_covering_schedule(system, get_solver("exact"), seed=0)
        assert traced.ignored_events == 0  # spans pass through silently
        assert "ignored_events" not in col.summary()
        assert "ignored_events" not in traced.summary()

    def test_collector_counts_outside_slots(self):
        col = RunCollector()
        col.emit(CandidateEvaluation(context="exact.bnb", count=5))
        assert col.counters["sets_evaluated"] == 5
        assert col.sets_per_slot == []


class TestExport:
    def _record(self, bench="mcs"):
        point = QUICK_MATRIX[0]
        return run_mcs_bench(point) if bench == "mcs" else run_oneshot_bench(point)

    def test_run_record_is_schema_valid(self):
        validate_run(self._record("mcs"))
        validate_run(self._record("oneshot"))

    def test_validate_rejects_missing_field(self):
        record = self._record()
        del record["solver"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_run(record)

    def test_validate_rejects_undeclared_metric(self):
        record = self._record()
        record["metrics"]["made_up"] = 1
        with pytest.raises(ValueError, match="undeclared"):
            validate_run(record)

    def test_validate_rejects_missing_required_metric(self):
        record = self._record()
        del record["metrics"]["slots_to_completion"]
        with pytest.raises(ValueError, match="required metrics"):
            validate_run(record)

    def test_merge_round_trips_through_json(self, tmp_path):
        path = tmp_path / "BENCH_mcs.json"
        record = self._record()
        merge_run(path, record)
        merge_run(path, self._record())
        data = load_bench(path)
        assert data["benchmark"] == "mcs"
        assert len(data["runs"]) == 2
        assert data["runs"][0] == record  # JSON round-trip preserves fields

    def test_merge_writes_atomically(self, tmp_path):
        """merge_run goes through a same-directory temp file + os.replace,
        so no partial state (or leftover temp file) survives a merge."""
        path = tmp_path / "BENCH_mcs.json"
        merge_run(path, self._record())
        merge_run(path, self._record())
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_mcs.json"]
        assert len(load_bench(path)["runs"]) == 2

    def test_merge_interrupted_write_preserves_old_document(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write (simulated at the os.replace boundary) leaves
        the trajectory holding the previous document, schema-valid, with
        no temp-file debris — the append is atomic per record."""
        path = tmp_path / "BENCH_mcs.json"
        first = self._record()
        merge_run(path, first)
        before = path.read_text()

        def _crash(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr("os.replace", _crash)
        with pytest.raises(KeyboardInterrupt):
            merge_run(path, self._record())
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_mcs.json"]
        assert len(load_bench(path)["runs"]) == 1

    def test_merge_rejects_family_mismatch(self, tmp_path):
        path = tmp_path / "BENCH_mcs.json"
        merge_run(path, self._record("mcs"))
        with pytest.raises(ValueError, match="cannot merge"):
            merge_run(path, self._record("oneshot"))

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "BENCH_mcs.json"
        merge_run(path, self._record())
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unsupported"):
            load_bench(path)

    def test_run_record_builder_validates(self):
        with pytest.raises(ValueError):
            run_record(
                bench="mcs",
                label="x",
                solver="ptas",
                scenario={},
                metrics={},  # missing required metrics
                wall_clock_s=0.0,
            )


@pytest.mark.bench_smoke
class TestBenchCli:
    def test_quick_matrix_emits_schema_valid_bench_files(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "appended 3 oneshot runs" in out
        assert "appended 3 mcs runs" in out
        for family, required in (
            ("oneshot", ("weight", "solver_wall_clock_s", "sets_evaluated")),
            ("mcs", ("slots_to_completion", "solver_wall_clock_s", "sets_evaluated")),
        ):
            data = load_bench(tmp_path / f"BENCH_{family}.json")
            assert len(data["runs"]) >= 3
            labels = {r["label"] for r in data["runs"]}
            assert len(labels) >= 3  # at least 3 distinct scenario points
            for run in data["runs"]:
                for metric in required:
                    assert metric in run["metrics"], (family, metric)

    def test_bench_appends_across_invocations(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--out-dir", str(tmp_path)]) == 0
        assert main(["bench", "--quick", "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        data = load_bench(tmp_path / "BENCH_mcs.json")
        assert len(data["runs"]) == 6

    def test_dry_run_writes_nothing(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--dry-run", "--out-dir", str(tmp_path)]) == 0
        assert "dry run" in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_pinned_seeds_reproduce_work_counters(self):
        a = run_mcs_bench(QUICK_MATRIX[0])
        b = run_mcs_bench(QUICK_MATRIX[0])
        for key in ("slots_to_completion", "sets_evaluated", "tags_per_slot",
                    "rrc_blocked", "rtc_silenced"):
            assert a["metrics"][key] == b["metrics"][key]
