"""Tests for the cross-process trace relay, the metrics histograms, the
run reporter and the ``--progress`` / ``report --trace`` CLI surface."""

import io
import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.core import get_solver, greedy_covering_schedule
from repro.deployment import Scenario
from repro.faults import FaultPlan
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProgressLine,
    RelayClipped,
    RelayRecorder,
    RunCollector,
    SlotEnd,
    SolverCall,
    SpanEnd,
    SpanStart,
    TraceRecorder,
    capture_relay,
    chrome_trace,
    current_span_id,
    load_jsonl,
    percentile,
    recording,
    relay_payload,
    relayed_from,
    render_report,
    render_report_html,
    replay_events,
    reset_spans,
    revive_event,
    run_record,
    span,
    validate_run,
    write_report,
)
from repro.obs.sink import JsonlSink, event_to_dict
from repro.perf.parallel import fork_available, fork_map
from repro.shard.spec import ShardSpec

SMALL = Scenario(
    num_readers=10,
    num_tags=80,
    side=40.0,
    lambda_interference=8,
    lambda_interrogation=5,
    seed=7,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


@pytest.fixture(scope="module")
def system():
    return SMALL.build()


def _trace_schedule(system, **kwargs):
    reset_spans()
    with recording(TraceRecorder()) as rec:
        schedule = greedy_covering_schedule(
            system, get_solver("ghc"), seed=9, **kwargs
        )
    return rec.events, schedule


def _span_names(events):
    return {e.span_id: e.name for e in events if isinstance(e, SpanStart)}


def _edges(events):
    names = _span_names(events)
    return {
        (names.get(e.parent_id), e.name)
        for e in events
        if isinstance(e, SpanStart)
    }


def _assert_balanced(events):
    depth = 0
    for e in events:
        if isinstance(e, SpanStart):
            depth += 1
        elif isinstance(e, SpanEnd):
            depth -= 1
            assert depth >= 0
    assert depth == 0


# ----------------------------------------------------------------------
# metrics


class TestPercentile:
    def test_matches_numpy_default(self):
        rng = np.random.default_rng(3)
        for n in (1, 2, 5, 100):
            samples = rng.uniform(-10, 10, size=n).tolist()
            for q in (0, 10, 50, 90, 99, 100, 37.5):
                assert percentile(samples, q) == pytest.approx(
                    float(np.percentile(samples, q)), abs=1e-12
                )

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_latency_stats_route_through_metrics(self, system):
        """experiments.analysis quantiles equal np.percentile exactly."""
        from repro.experiments.analysis import LatencyStats, tag_read_slots

        _, schedule = _trace_schedule(system)
        stats = LatencyStats.from_schedule(schedule)
        slots = sorted(tag_read_slots(schedule).values())
        assert stats.median == pytest.approx(float(np.percentile(slots, 50)))
        assert stats.p90 == pytest.approx(float(np.percentile(slots, 90)))
        assert stats.p99 == pytest.approx(float(np.percentile(slots, 99)))
        assert stats.count == len(slots)


class TestHistogram:
    def test_power_of_two_buckets_are_exact(self):
        h = Histogram()
        for v in (1.0, 1.5, 2.0, 0.75, 0.0, -3.0):
            h.observe(v)
        # 2**(e-1) <= v < 2**e: 1.0/1.5 -> e=1, 2.0 -> e=2, 0.75 -> e=0
        assert h.buckets == {1: 2, 2: 1, 0: 1, Histogram.ZERO_BUCKET: 2}
        assert h.count == 6

    def test_summary_shape_and_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1.0 and s["max"] == 100.0
        assert s["sum"] == pytest.approx(5050.0)
        assert s["p50"] == pytest.approx(float(np.percentile(range(1, 101), 50)))
        assert s["p90"] == pytest.approx(float(np.percentile(range(1, 101), 90)))
        assert s["p99"] == pytest.approx(float(np.percentile(range(1, 101), 99)))

    def test_empty_histogram_summary_raises(self):
        with pytest.raises(ValueError):
            Histogram().summary()

    def test_counter_and_gauge(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = Gauge()
        g.set(7.5)
        assert g.value == 7.5

    def test_registry_create_on_first_use_and_omit_empty(self):
        reg = MetricsRegistry()
        h = reg.histogram("a")
        assert reg.histogram("a") is h
        reg.histogram("empty")
        h.observe(2.0)
        summaries = reg.histogram_summaries()
        assert list(summaries) == ["a"]
        reg.counter("n").inc(3)
        assert reg.counter_values() == {"n": 3}


# ----------------------------------------------------------------------
# relay


class TestRelayRecorder:
    def test_bounded_buffer_counts_overflow(self):
        rec = RelayRecorder(max_events=3)
        for i in range(5):
            rec.emit(RelayClipped(dropped_events=i))
        assert len(rec.events) == 3
        assert rec.dropped_events == 2
        events, dropped, pid = relay_payload(rec)
        assert len(events) == 3 and dropped == 2 and pid == os.getpid()

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            RelayRecorder(max_events=0)


class TestReplay:
    def _worker_events(self):
        """A worker-side payload: a root span with one child and an event."""
        return (
            SpanStart(span_id=101, parent_id=None, name="mcs.solve", t=10.0),
            SpanStart(span_id=102, parent_id=101, name="solver.call", t=10.5),
            SolverCall(
                solver="ghc", seconds=0.1, weight=3, active_readers=2,
                feasible=True,
            ),
            SpanEnd(span_id=102, name="solver.call", t=11.0, seconds=0.5),
            SpanEnd(span_id=101, name="mcs.solve", t=11.5, seconds=1.5),
        )

    def test_rebases_and_reparents_under_open_span(self):
        reset_spans()
        payload = (self._worker_events(), 0, os.getpid() + 1)
        with recording(TraceRecorder()) as rec:
            with span("pool.dispatch"):
                owner = current_span_id()
                assert replay_events(payload, rec) == 0
        starts = [e for e in rec.events if isinstance(e, SpanStart)]
        by_name = {e.name: e for e in starts}
        # worker root hangs under the open pool.dispatch span...
        assert by_name["mcs.solve"].parent_id == owner
        # ...internal structure is preserved on fresh ids
        assert by_name["solver.call"].parent_id == by_name["mcs.solve"].span_id
        assert {e.span_id for e in starts}.isdisjoint({101, 102})
        # foreign pid is stamped on every relayed span
        assert dict(by_name["mcs.solve"].attrs)["relay_pid"] == os.getpid() + 1
        assert not any(isinstance(e, RelayClipped) for e in rec.events)
        _assert_balanced(rec.events)

    def test_same_pid_payload_gets_no_pid_attr_but_cell(self):
        reset_spans()
        payload = (self._worker_events(), 0, os.getpid())
        with recording(TraceRecorder()) as rec:
            with span("shard.solve"):
                replay_events(payload, rec, cell=3)
        attrs = dict(
            next(
                e for e in rec.events
                if isinstance(e, SpanStart) and e.name == "mcs.solve"
            ).attrs
        )
        assert "relay_pid" not in attrs
        assert attrs["relay_cell"] == 3

    def test_clipped_end_is_synthesised_and_balanced(self):
        reset_spans()
        events = self._worker_events()[:3]  # both ends clipped off
        payload = (events, 4, os.getpid())
        with recording(TraceRecorder()) as rec:
            with span("pool.dispatch"):
                assert replay_events(payload, rec) == 4
        ends = [e for e in rec.events if isinstance(e, SpanEnd)]
        assert {e.name for e in ends} >= {"mcs.solve", "solver.call"}
        _assert_balanced(rec.events)
        clipped = [e for e in rec.events if isinstance(e, RelayClipped)]
        assert len(clipped) == 1 and clipped[0].dropped_events == 4
        assert relayed_from(rec) == 4

    def test_end_without_start_counts_as_dropped(self):
        reset_spans()
        payload = (
            (SpanEnd(span_id=9, name="solver.call", t=1.0, seconds=0.5),),
            0,
            os.getpid(),
        )
        with recording(TraceRecorder()) as rec:
            with span("pool.dispatch"):
                assert replay_events(payload, rec) == 1
        assert relayed_from(rec) == 1

    def test_none_payload_is_a_noop(self):
        with recording(TraceRecorder()) as rec:
            assert replay_events(None, rec) == 0
        assert rec.events == []

    def test_capture_relay_wraps_callable(self):
        def fn(x):
            from repro.obs.events import get_recorder

            get_recorder().emit(RelayClipped(dropped_events=x))
            return x * 2

        result, payload = capture_relay(fn, 21)
        assert result == 42
        events, dropped, pid = payload
        assert events == (RelayClipped(dropped_events=21),)
        assert dropped == 0 and pid == os.getpid()


def _emit_traced(x):
    """Module-level worker fn: emits one solver.call span + event."""
    with span("solver.call", solver="stub"):
        from repro.obs.events import get_recorder

        rec = get_recorder()
        if rec.enabled:
            rec.emit(
                SolverCall(
                    solver="stub", seconds=0.0, weight=x, active_readers=1,
                    feasible=True,
                )
            )
    return 2 * x


class _BoobyTrap:
    """Disabled recorder that explodes if any instrument emits anyway."""

    enabled = False

    def emit(self, event):  # pragma: no cover - the trap
        raise AssertionError(f"emit while disabled: {event!r}")


@needs_fork
class TestForkMapRelay:
    def test_worker_spans_relayed_under_pool_dispatch(self):
        reset_spans()
        with recording(TraceRecorder()) as rec:
            results = fork_map(_emit_traced, [1, 2, 3], workers=2)
        assert results == [2, 4, 6]
        names = _span_names(rec.events)
        calls = [
            e for e in rec.events
            if isinstance(e, SpanStart) and e.name == "solver.call"
        ]
        assert len(calls) == 3
        for e in calls:
            assert names[e.parent_id] == "pool.dispatch"
            assert dict(e.attrs)["relay_pid"] != os.getpid()
        solver_events = [e for e in rec.events if isinstance(e, SolverCall)]
        assert sorted(e.weight for e in solver_events) == [1, 2, 3]
        _assert_balanced(rec.events)

    def test_relay_off_with_recorder_disabled(self):
        from repro.obs.events import recording as rec_ctx

        with rec_ctx(_BoobyTrap()):
            assert fork_map(_emit_traced, [1, 2, 3], workers=2) == [2, 4, 6]


class TestShardRelay:
    def test_serial_cell_solves_nest_under_shard_solve(self, system):
        events, _ = _trace_schedule(system, shard=ShardSpec(cells=4))
        edges = _edges(events)
        assert ("mcs.solve", "shard.solve") in edges
        assert ("shard.solve", "solver.call") in edges
        cells = {
            dict(e.attrs).get("relay_cell")
            for e in events
            if isinstance(e, SpanStart) and e.name == "solver.call"
        }
        assert cells and None not in cells
        assert not any(
            "relay_pid" in dict(e.attrs)
            for e in events
            if isinstance(e, SpanStart)
        )
        _assert_balanced(events)

    @needs_fork
    def test_worker_cell_solves_carry_pids_and_lanes(self, system):
        events, schedule = _trace_schedule(
            system, shard=ShardSpec(cells=4, workers=2)
        )
        _, serial = _trace_schedule(system, shard=ShardSpec(cells=4))
        assert schedule.reads_per_slot() == serial.reads_per_slot()
        edges = _edges(events)
        assert ("shard.solve", "solver.call") in edges
        pids = {
            dict(e.attrs).get("relay_pid")
            for e in events
            if isinstance(e, SpanStart) and e.name == "solver.call"
        }
        assert pids and None not in pids and os.getpid() not in pids
        _assert_balanced(events)
        # the Chrome exporter draws relayed spans on their own lanes
        doc = chrome_trace(events)
        lanes = {
            x["tid"] for x in doc["traceEvents"]
            if x["ph"] == "B" and x["name"] == "solver.call"
        }
        assert len(lanes) >= 1 and 1 not in lanes
        meta = {
            x["args"]["name"]
            for x in doc["traceEvents"]
            if x["ph"] == "M" and x["name"] == "thread_name"
        }
        assert "main" in meta
        assert any(name.startswith("worker pid ") for name in meta)
        # every E pairs with its B's lane
        lane_of = {}
        for x in doc["traceEvents"]:
            if x["ph"] == "B":
                lane_of[x["args"]["span_id"]] = x["tid"]
            elif x["ph"] == "E":
                assert x["tid"] == lane_of[x["args"]["span_id"]]

    def test_shard_fault_composition_span_tree(self, system):
        """Composed shard x faults keeps a coherent tree: per-cell solves
        under shard.solve, fault events attributed to the open slot."""
        plan = FaultPlan.uniform_flaky(
            system.num_readers, p_fail=0.2, miss_rate=0.2, seed=1
        )
        events, schedule = _trace_schedule(
            system, faults=plan, shard=ShardSpec(cells=4)
        )
        assert schedule.complete
        edges = _edges(events)
        assert ("mcs.solve", "shard.solve") in edges
        assert ("shard.solve", "solver.call") in edges
        stack, attribution = [], {}
        for e in events:
            if isinstance(e, SpanStart):
                stack.append(e.name)
            elif isinstance(e, SpanEnd):
                stack.pop()
            else:
                attribution.setdefault(type(e).__name__, set()).add(
                    stack[-1] if stack else None
                )
        assert attribution["ReadMissed"] == {"mcs.slot"}
        assert attribution["SlotEnd"] == {"mcs.slot"}
        _assert_balanced(events)

    def test_refresh_nests_under_solve_stage(self, system):
        from repro.faults.plan import PermanentCrash

        plan = FaultPlan(
            reader_faults=(PermanentCrash(reader=2, at_slot=0),),
            miss_rate=0.3,
            seed=11,
        )
        events, _ = _trace_schedule(
            system, faults=plan, shard=ShardSpec(cells=4)
        )
        assert ("mcs.solve", "shard.refresh") in _edges(events)
        _assert_balanced(events)


# ----------------------------------------------------------------------
# sink streaming


class TestJsonlFlushInterval:
    def test_zero_interval_streams_every_event(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path, buffer_events=256, flush_interval_s=0)
        sink.emit(SlotEnd(slot=0, tags_read=5, weight=1, active_readers=2))
        sink.emit(SlotEnd(slot=1, tags_read=3, weight=1, active_readers=2))
        # visible on disk before close: tail -f follows the run live
        assert len(path.read_text().splitlines()) == 2
        sink.close()
        assert len(load_jsonl(path)) == 2

    def test_none_interval_buffers_until_full(self, tmp_path):
        path = tmp_path / "buffered.jsonl"
        sink = JsonlSink(path, buffer_events=256, flush_interval_s=None)
        sink.emit(SlotEnd(slot=0, tags_read=5, weight=1, active_readers=2))
        assert path.read_text() == ""
        sink.close()
        assert len(load_jsonl(path)) == 1

    def test_rejects_negative_interval(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", flush_interval_s=-1)


# ----------------------------------------------------------------------
# reporter


class TestProgressLine:
    def test_paints_on_slot_end_and_closes_with_newline(self):
        stream = io.StringIO()
        line = ProgressLine(stream=stream, force=True)
        line.emit(SlotEnd(slot=0, tags_read=12, weight=1, active_readers=3))
        out = stream.getvalue()
        assert out.startswith("\r") and "slot 1" in out and "tags read 12" in out
        line.close()
        assert stream.getvalue().endswith("\n")

    def test_silent_off_tty(self):
        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line.emit(SlotEnd(slot=0, tags_read=12, weight=1, active_readers=3))
        line.close()
        assert stream.getvalue() == ""


class TestReport:
    def test_revive_round_trips_span_attrs(self):
        start = SpanStart(
            span_id=4, parent_id=2, name="shard.solve", t=1.0,
            attrs=(("cell", 3), ("relay_pid", 77)),
        )
        end = SlotEnd(slot=0, tags_read=5, weight=1, active_readers=2)
        assert revive_event(event_to_dict(start)) == start
        assert revive_event(event_to_dict(end)) == end
        assert revive_event({"event": "NotAnEvent", "x": 1}) is None

    def test_report_sections_for_sharded_run(self, system):
        events, _ = _trace_schedule(system, shard=ShardSpec(cells=4))
        text = render_report(events)
        assert "slot timeline" in text
        assert "per-cell solve heatmap" in text
        assert "histograms (p50 / p90 / p99)" in text
        assert "slot_solve_s" in text and "cell_solve_s" in text
        # dict-shaped events render identically to live objects
        assert render_report([event_to_dict(e) for e in events]) == text

    def test_serial_run_omits_shard_and_pool_sections(self, system):
        events, _ = _trace_schedule(system)
        text = render_report(events)
        assert "per-cell solve heatmap" not in text
        assert "pool health" not in text

    def test_html_report_is_self_contained(self, system, tmp_path):
        events, _ = _trace_schedule(system, shard=ShardSpec(cells=4))
        page = render_report_html(events)
        assert page.startswith("<!doctype html>")
        assert "per-cell solve heatmap" in page
        assert "src=" not in page and "href=" not in page
        out = write_report(events, tmp_path / "run.html")
        assert out.read_text() == page


# ----------------------------------------------------------------------
# BENCH integration


class TestBenchHistograms:
    def test_summary_carries_slot_solve_histogram(self, system):
        collector = RunCollector()
        reset_spans()
        with recording(collector):
            greedy_covering_schedule(
                system, get_solver("ghc"), seed=9, shard=ShardSpec(cells=4)
            )
        summary = collector.summary()
        hists = summary["histograms"]
        for name in ("slot_solve_s", "cell_solve_s", "halo_readers"):
            s = hists[name]
            assert s["count"] > 0
            assert s["min"] <= s["p50"] <= s["p90"] <= s["p99"] <= s["max"]
        record = run_record(
            bench="scale",
            label="unit",
            solver="ghc",
            scenario={"seed": 9},
            metrics=summary,
            wall_clock_s=0.0,
        )
        validate_run(record)  # histograms is a declared metric field

    def test_plain_run_has_no_fault_ladder_histogram(self, system):
        collector = RunCollector()
        with recording(collector):
            greedy_covering_schedule(system, get_solver("ghc"), seed=9)
        hists = collector.summary()["histograms"]
        assert "fault_ladder_depth" not in hists
        assert "slot_solve_s" in hists


# ----------------------------------------------------------------------
# CLI


class TestReportCli:
    def test_trace_run_workers_requires_shard_cells(self, tmp_path, capsys):
        assert main([
            "trace", "run", "--quick", "--workers", "2",
            "--out", str(tmp_path / "t.json"),
        ]) == 2
        assert "--shard-cells" in capsys.readouterr().err

    def test_report_renders_streamed_trace(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        assert main([
            "trace", "run", "--quick", "--shard-cells", "4",
            "--out", str(tmp_path / "t.json"), "--jsonl", str(jsonl),
        ]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "slot timeline" in out
        assert "per-cell solve heatmap" in out
        html = tmp_path / "run.html"
        assert main([
            "report", "--trace", str(jsonl), "--out", str(html),
        ]) == 0
        assert html.read_text().startswith("<!doctype html>")

    def test_report_missing_trace_errors(self, tmp_path, capsys):
        assert main([
            "report", "--trace", str(tmp_path / "absent.jsonl"),
        ]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    @needs_fork
    def test_trace_run_with_workers_exports_worker_lanes(
        self, tmp_path, capsys
    ):
        out = tmp_path / "t.json"
        assert main([
            "trace", "run", "--quick", "--shard-cells", "4",
            "--workers", "2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        meta = [
            x for x in doc["traceEvents"]
            if x["ph"] == "M" and x["name"] == "thread_name"
        ]
        assert any(
            x["args"]["name"].startswith("worker pid ") for x in meta
        )
        b = sum(1 for x in doc["traceEvents"] if x["ph"] == "B")
        e = sum(1 for x in doc["traceEvents"] if x["ph"] == "E")
        assert b == e
