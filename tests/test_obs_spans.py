"""Tests for span tracing: nesting, the JSONL sink, the Chrome exporter
and the ``rfid-sched trace`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core import get_solver, greedy_covering_schedule
from repro.deployment import Scenario
from repro.faults import FaultPlan
from repro.obs import (
    SPAN_NAMES,
    JsonlSink,
    SpanEnd,
    SpanStart,
    TeeRecorder,
    TraceRecorder,
    chrome_trace,
    current_span_id,
    load_jsonl,
    recording,
    reset_spans,
    span,
    write_chrome_trace,
)

SMALL = Scenario(
    num_readers=10,
    num_tags=80,
    side=40.0,
    lambda_interference=8,
    lambda_interrogation=5,
    seed=7,
)


@pytest.fixture(scope="module")
def system():
    return SMALL.build()


def _trace(system, solver_name="exact", **kwargs):
    solver_kwargs = kwargs.pop("solver_kwargs", {})
    reset_spans()
    with recording(TraceRecorder()) as rec:
        schedule = greedy_covering_schedule(
            system, get_solver(solver_name, **solver_kwargs), **kwargs
        )
    return rec.events, schedule


def _edges(events):
    """Set of (parent span name or None, child span name) pairs."""
    names = {e.span_id: e.name for e in events if isinstance(e, SpanStart)}
    return {
        (names.get(e.parent_id), e.name)
        for e in events
        if isinstance(e, SpanStart)
    }


class TestSpanTree:
    def test_mcs_run_nests_slot_stage_solver(self, system):
        events, schedule = _trace(system, linklayer="aloha", seed=0)
        edges = _edges(events)
        assert (None, "mcs.run") in edges
        assert ("mcs.run", "mcs.slot") in edges
        assert ("mcs.slot", "mcs.solve") in edges
        assert ("mcs.slot", "mcs.inventory") in edges
        assert ("mcs.slot", "mcs.retire") in edges
        assert ("mcs.solve", "solver.call") in edges
        assert ("mcs.inventory", "linklayer.session") in edges
        starts = [e for e in events if isinstance(e, SpanStart)]
        assert sum(e.name == "mcs.slot" for e in starts) == schedule.size

    def test_distributed_solver_nests_distsim_run(self, system):
        events, _ = _trace(system, "distributed", seed=0)
        assert ("solver.call", "distsim.run") in _edges(events)

    def test_sweep_run_is_a_root_span(self):
        from repro.experiments.sweep import run_sweep

        reset_spans()
        with recording(TraceRecorder()) as rec:
            run_sweep("x", [1.0, 2.0], lambda v, s: {"m": v + s}, seeds=[0])
        edges = _edges(rec.events)
        assert (None, "sweep.run") in edges
        sweeps = [e for e in rec.events if isinstance(e, SpanStart)]
        assert [e.name for e in sweeps] == ["sweep.run"]
        assert dict(sweeps[0].attrs) == {"param": "x", "points": 2}

    def test_fault_events_fall_inside_their_slot_span(self, system):
        from repro.obs.events import ReadMissed

        plan = FaultPlan.uniform_flaky(
            system.num_readers, 0.0, miss_rate=0.5, seed=5
        )
        events, _ = _trace(
            system, "ghc", linklayer="aloha", seed=0, faults=plan,
            max_slots=4000,
        )
        open_spans = []
        names = {e.span_id: e.name for e in events if isinstance(e, SpanStart)}
        saw_missed = False
        for event in events:
            if isinstance(event, SpanStart):
                open_spans.append(event.span_id)
            elif isinstance(event, SpanEnd):
                open_spans.pop()
            elif isinstance(event, ReadMissed):
                saw_missed = True
                assert "mcs.slot" in {names[s] for s in open_spans}
        assert saw_missed

    def test_every_start_has_matching_end(self, system):
        events, _ = _trace(system, seed=0)
        starts = {e.span_id for e in events if isinstance(e, SpanStart)}
        ends = {e.span_id for e in events if isinstance(e, SpanEnd)}
        assert starts == ends
        assert all(
            e.seconds >= 0.0 for e in events if isinstance(e, SpanEnd)
        )

    def test_all_emitted_names_are_in_taxonomy(self, system):
        events, _ = _trace(system, "distributed", linklayer="aloha", seed=0)
        emitted = {e.name for e in events if isinstance(e, SpanStart)}
        assert emitted <= set(SPAN_NAMES)

    def test_stack_helpers(self):
        reset_spans()
        assert current_span_id() is None
        with recording(TraceRecorder()):
            with span("mcs.run"):
                outer = current_span_id()
                assert outer is not None
                with span("mcs.slot", slot=0):
                    assert current_span_id() != outer
                assert current_span_id() == outer
        assert current_span_id() is None

    def test_spans_off_allocates_no_ids(self):
        reset_spans()
        with span("mcs.run"):
            assert current_span_id() is None  # null recorder: no id, no stack
        with recording(TraceRecorder()) as rec:
            with span("mcs.run"):
                assert current_span_id() == 1  # counter untouched by the above
        assert rec.events[0].span_id == 1


class TestChromeTrace:
    def test_b_e_pairs_balance_and_nest(self, system):
        events, _ = _trace(system, linklayer="aloha", seed=0)
        doc = chrome_trace(events)
        depth = 0
        b = e = 0
        for entry in doc["traceEvents"]:
            if entry["ph"] == "B":
                depth += 1
                b += 1
            elif entry["ph"] == "E":
                depth -= 1
                e += 1
                assert depth >= 0
        assert depth == 0 and b == e > 0

    def test_instants_carry_their_enclosing_span(self, system):
        events, _ = _trace(system, linklayer="aloha", seed=0)
        doc = chrome_trace(events)
        instants = [x for x in doc["traceEvents"] if x["ph"] == "i"]
        assert instants
        assert any(x["name"] == "LinkLayerSession" for x in instants)
        for x in instants:
            assert x["args"]["span"] in SPAN_NAMES

    def test_timestamps_are_relative_microseconds(self, system):
        events, _ = _trace(system, seed=0)
        doc = chrome_trace(events)
        ts = [x["ts"] for x in doc["traceEvents"]]
        assert min(ts) == 0.0

    def test_write_round_trip(self, system, tmp_path):
        events, _ = _trace(system, seed=0)
        out = tmp_path / "trace.json"
        write_chrome_trace(events, out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"] == chrome_trace(events)["traceEvents"]


class TestJsonlSink:
    def test_stream_matches_in_memory_recorder(self, system, tmp_path):
        path = tmp_path / "events.jsonl"
        rec = TraceRecorder()
        reset_spans()
        sink = JsonlSink(path, buffer_events=4)
        with recording(TeeRecorder(rec, sink)):
            greedy_covering_schedule(
                system, get_solver("exact"), linklayer="aloha", seed=0
            )
        sink.close()
        rows = load_jsonl(path)
        assert sink.events_written == len(rec.events) == len(rows)
        assert rows[0]["event"] == type(rec.events[0]).__name__
        # the offline conversion equals the in-memory one
        assert (
            chrome_trace(rows)["traceEvents"]
            == chrome_trace(rec.events)["traceEvents"]
        )

    def test_sink_context_manager_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, buffer_events=1000) as sink:
            with recording(sink):
                with span("mcs.run"):
                    pass
        assert len(load_jsonl(path)) == 2

    def test_sink_rejects_nonpositive_buffer(self, tmp_path):
        with pytest.raises(ValueError, match="buffer_events"):
            JsonlSink(tmp_path / "x.jsonl", buffer_events=0)

    def test_tee_skips_disabled_children(self):
        from repro.obs import NULL_RECORDER

        rec = TraceRecorder()
        tee = TeeRecorder(NULL_RECORDER, rec)
        assert tee.enabled
        with recording(tee):
            with span("mcs.run"):
                pass
        assert len(rec.events) == 2
        assert not TeeRecorder(NULL_RECORDER).enabled


class TestTraceCli:
    def test_trace_run_quick_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "run", "--quick", "--out", str(out)]) == 0
        assert "traced q_sparse_r12t100" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        names = {x["name"] for x in doc["traceEvents"] if x["ph"] == "B"}
        assert {"mcs.run", "mcs.slot", "mcs.solve", "solver.call"} <= names
        assert names <= set(SPAN_NAMES)

    def test_trace_run_streams_and_converts(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        conv = tmp_path / "converted.json"
        assert main([
            "trace", "run", "--quick", "--linklayer", "aloha",
            "--out", str(out), "--jsonl", str(jsonl),
        ]) == 0
        assert main(["trace", "convert", str(jsonl), "--out", str(conv)]) == 0
        capsys.readouterr()
        assert (
            json.loads(out.read_text())["traceEvents"]
            == json.loads(conv.read_text())["traceEvents"]
        )

    def test_trace_run_max_events_caps_buffer(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "run", "--quick", "--max-events", "5", "--out", str(out),
        ]) == 0
        assert "dropped" in capsys.readouterr().out
        assert len(json.loads(out.read_text())["traceEvents"]) <= 5
