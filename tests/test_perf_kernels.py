"""Equivalence and determinism tests for the ``repro.perf`` kernel layer.

The layer's contract (``docs/performance.md``) is that no kernel changes
*what* is computed — packed popcounts, the incremental generalised-weight
engine and the fork-based executors must reproduce the reference NumPy
paths bit-for-bit.  This suite pins that contract:

* packed coverage words/masks against naive per-column packing;
* :class:`BitsetWeightOracle` and :class:`GeneralizedWeightClimber`
  against :meth:`RFIDSystem.weight` on feasible **and infeasible** sets;
* ``run_sweep(workers=4)`` byte-identical to the serial run;
* ``run_bench_matrix(workers=2)`` counter-identical to the serial run;
* the quick-matrix work counters against the committed BENCH baselines
  (the perf-regression tripwire: a drift in ``sets_evaluated`` /
  ``sets_by_context`` means an optimisation changed semantics).
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.weights import BitsetWeightOracle
from repro.perf import (
    GeneralizedWeightClimber,
    PackedCoverage,
    conflict_bits,
    fork_map,
    popcount_words,
    resolve_workers,
    silencer_bits,
    system_memo,
)
from repro.perf.packed import _BYTE_POPCOUNT, pack_bool_to_words, pack_square_bool
from tests.conftest import make_random_system, system_strategy

REPO_ROOT = Path(__file__).resolve().parent.parent

PROP_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _naive_mask(coverage: np.ndarray, reader: int) -> int:
    mask = 0
    for t in np.flatnonzero(coverage[:, reader]):
        mask |= 1 << int(t)
    return mask


def _table_popcount(words: np.ndarray) -> np.ndarray:
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    counts = _BYTE_POPCOUNT[as_bytes].reshape(words.shape + (-1,))
    return counts.sum(axis=-1, dtype=np.int64)


class TestPackedCoverage:
    @given(system=system_strategy(max_readers=8, max_tags=70))
    @settings(**PROP_SETTINGS)
    def test_masks_match_naive_bit_loop(self, system):
        packed = PackedCoverage(system.coverage)
        for i in range(system.num_readers):
            assert packed.masks[i] == _naive_mask(system.coverage, i)
        assert packed.mask_dict == dict(enumerate(packed.masks))
        assert packed.full_mask == (1 << system.num_tags) - 1

    @given(system=system_strategy(max_readers=8, max_tags=70), seed=st.integers(0, 2**16))
    @settings(**PROP_SETTINGS)
    def test_covered_counts_match_numpy(self, system, seed):
        packed = PackedCoverage(system.coverage)
        rng = np.random.default_rng(seed)
        unread = rng.random(system.num_tags) < 0.6
        expected_full = system.coverage.sum(axis=0).astype(np.int64)
        expected_masked = (system.coverage & unread[:, None]).sum(axis=0)
        assert np.array_equal(packed.covered_counts(), expected_full)
        assert np.array_equal(packed.covered_counts(unread), expected_masked)

    @given(system=system_strategy(max_readers=6, max_tags=70))
    @settings(**PROP_SETTINGS)
    def test_words_and_masks_agree(self, system):
        packed = PackedCoverage(system.coverage)
        for i in range(system.num_readers):
            rebuilt = int.from_bytes(
                np.ascontiguousarray(packed.words[i]).view(np.uint8).tobytes(),
                "little",
            ) if system.num_tags else 0
            assert rebuilt == packed.masks[i]

    def test_pack_mask_validates_shape(self):
        packed = PackedCoverage(np.zeros((10, 3), dtype=bool))
        with pytest.raises(ValueError, match="unread mask must have shape"):
            packed.pack_mask(np.zeros(9, dtype=bool))

    def test_popcount_matches_table_fallback(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=(7, 5)).astype(np.uint64)
        assert np.array_equal(popcount_words(words), _table_popcount(words))

    def test_pack_bool_roundtrip(self):
        rng = np.random.default_rng(1)
        arr = rng.random(130) < 0.5
        words = pack_bool_to_words(arr)
        assert words.shape == (3,)
        assert int(popcount_words(words).sum()) == int(arr.sum())


class TestSystemCaches:
    def test_packed_coverage_is_cached(self):
        system = make_random_system(8, 60, 30.0, 8.0, 5.0, seed=5)
        assert system.packed_coverage is system.packed_coverage

    def test_system_memo_builds_once(self):
        system = make_random_system(6, 40, 30.0, 8.0, 5.0, seed=6)
        calls = []
        a = system_memo(system, "k", lambda: calls.append(1) or object())
        b = system_memo(system, "k", lambda: calls.append(1) or object())
        assert a is b
        assert calls == [1]

    def test_conflict_and_silencer_bits_match_matrices(self):
        system = make_random_system(10, 50, 30.0, 10.0, 5.0, seed=7)
        conf = conflict_bits(system)
        sil = silencer_bits(system)
        assert conf == pack_square_bool(system.conflict)
        assert sil == pack_square_bool(system.in_interference_range)
        for i in range(system.num_readers):
            for j in range(system.num_readers):
                assert bool(conf[i] >> j & 1) == bool(system.conflict[i, j])


class TestWeightEquivalence:
    """Packed oracle == big-int oracle == NumPy ``system.weight``."""

    @given(
        system=system_strategy(max_readers=8, max_tags=50),
        seed=st.integers(0, 2**16),
        use_unread=st.booleans(),
    )
    @settings(**PROP_SETTINGS)
    def test_feasible_sets_all_three_paths_agree(self, system, seed, use_unread):
        rng = np.random.default_rng(seed)
        unread = (rng.random(system.num_tags) < 0.7) if use_unread else None
        # draw an arbitrary reader order, keep a conflict-free prefix subset
        order = rng.permutation(system.num_readers)
        feasible = []
        for r in order:
            if not any(system.conflict[r, f] for f in feasible):
                feasible.append(int(r))
        oracle = BitsetWeightOracle(system, unread)
        climber = GeneralizedWeightClimber(system, unread)
        for r in feasible:
            climber.add(r)
        expected = system.weight(feasible, unread)
        assert oracle.weight_of(feasible) == expected
        assert climber.current_weight() == expected

    @given(
        system=system_strategy(max_readers=8, max_tags=50),
        seed=st.integers(0, 2**16),
        use_unread=st.booleans(),
    )
    @settings(**PROP_SETTINGS)
    def test_infeasible_sets_climber_matches_numpy(self, system, seed, use_unread):
        rng = np.random.default_rng(seed)
        unread = (rng.random(system.num_tags) < 0.7) if use_unread else None
        active = sorted(
            int(r)
            for r in np.flatnonzero(rng.random(system.num_readers) < 0.5)
        )
        climber = GeneralizedWeightClimber(system, unread)
        for r in active:
            climber.add(r)
        assert climber.current_weight() == system.weight(active, unread)

    @given(
        system=system_strategy(max_readers=8, max_tags=50),
        seed=st.integers(0, 2**16),
    )
    @settings(**PROP_SETTINGS)
    def test_weight_with_matches_numpy_on_next_reader(self, system, seed):
        rng = np.random.default_rng(seed)
        active = [
            int(r) for r in np.flatnonzero(rng.random(system.num_readers) < 0.4)
        ]
        climber = GeneralizedWeightClimber(system)
        for r in active:
            climber.add(r)
        for cand in range(system.num_readers):
            if cand in active:
                continue
            assert climber.weight_with(cand) == system.weight(active + [cand])

    @given(system=system_strategy(max_readers=8, max_tags=50))
    @settings(**PROP_SETTINGS)
    def test_oracle_weight_with_equals_push_pop(self, system):
        oracle = BitsetWeightOracle(system)
        pushed = []
        for r in range(0, system.num_readers, 2):
            oracle.push(r)
            pushed.append(r)
        for cand in range(system.num_readers):
            oracle.push(cand)
            expected = oracle.current_weight()
            oracle.pop()
            assert oracle.weight_with(cand) == expected


def _measure_for_sweep(value, seed):
    # pure function of (value, seed): byte-identical across processes
    rng = np.random.default_rng(int(seed) + int(value * 1000))
    return {"alg_a": float(rng.integers(0, 100)) + value, "alg_b": float(seed)}


class TestParallelExecution:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1

    def test_fork_map_preserves_order(self):
        payloads = list(range(20))
        assert fork_map(lambda x: x * x, payloads, workers=4) == [
            x * x for x in payloads
        ]

    def test_fork_map_serial_fallback(self):
        assert fork_map(lambda x: x + 1, [1, 2, 3], workers=1) == [2, 3, 4]
        assert fork_map(lambda x: x + 1, [7], workers=8) == [8]

    def test_fork_map_thread_fallback_without_fork(self, monkeypatch):
        """On a platform without ``os.fork`` (Windows, spawn-only builds)
        fork_map must warn once and degrade to a thread pool with
        byte-identical, payload-ordered results."""
        import os as os_module

        from repro.perf import parallel as parallel_module

        monkeypatch.delattr(os_module, "fork")
        monkeypatch.setattr(parallel_module, "_THREAD_FALLBACK_WARNED", False)
        payloads = list(range(17))
        with pytest.warns(RuntimeWarning, match="os.fork unavailable"):
            got = fork_map(lambda x: x * 3 + 1, payloads, workers=4)
        assert got == [x * 3 + 1 for x in payloads]

    def test_fork_map_thread_fallback_spawn_only(self, monkeypatch):
        """The same degradation triggers when fork exists but is not an
        available multiprocessing start method."""
        import multiprocessing

        from repro.perf import parallel as parallel_module

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        monkeypatch.setattr(parallel_module, "_THREAD_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning):
            got = fork_map(lambda x: x - 1, [5, 6, 7], workers=2)
        assert got == [4, 5, 6]

    def test_fork_map_thread_fallback_warns_once_per_process(self, monkeypatch):
        """The degradation warning fires on the first fallback only — the
        platform does not change between calls, so later calls stay silent
        (and still produce ordered results)."""
        import os as os_module
        import warnings as warnings_module

        from repro.perf import parallel as parallel_module

        monkeypatch.delattr(os_module, "fork")
        monkeypatch.setattr(parallel_module, "_THREAD_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="os.fork unavailable"):
            fork_map(lambda x: x + 1, [1, 2, 3], workers=2)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            got = fork_map(lambda x: x + 1, [4, 5, 6], workers=2)
        assert got == [5, 6, 7]

    def test_fork_map_serial_paths_never_warn(self, monkeypatch):
        """The degradations for ``workers<=1`` / single payload stay silent
        even on fork-less platforms — nothing platform-specific runs."""
        import os as os_module
        import warnings as warnings_module

        monkeypatch.delattr(os_module, "fork")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert fork_map(lambda x: x, [1, 2, 3], workers=1) == [1, 2, 3]
            assert fork_map(lambda x: x, [9], workers=4) == [9]

    def test_run_sweep_parallel_byte_identical_to_serial(self):
        from repro.experiments.sweep import run_sweep

        serial = run_sweep(
            "lam", [1.0, 2.0, 3.0], _measure_for_sweep, seeds=[0, 1], workers=None
        )
        parallel = run_sweep(
            "lam", [1.0, 2.0, 3.0], _measure_for_sweep, seeds=[0, 1], workers=4
        )
        assert parallel.raw == serial.raw
        assert parallel.param_values == serial.param_values
        assert parallel.metrics == serial.metrics
        assert {k: (s.mean, s.std) for k, s in parallel.stats.items()} == {
            k: (s.mean, s.std) for k, s in serial.stats.items()
        }

    def test_run_sweep_parallel_emits_sweep_points_in_parent(self):
        from repro.experiments.sweep import run_sweep
        from repro.obs.collectors import RunCollector
        from repro.obs.events import recording

        collector = RunCollector()
        with recording(collector):
            run_sweep("lam", [1.0, 2.0], _measure_for_sweep, seeds=[0], workers=2)
        assert collector.summary()["sweep_points"] == 2


def _strip_volatile(record):
    metrics = {
        k: v
        for k, v in record["metrics"].items()
        if "wall_clock" not in k
        and not k.endswith("_seconds_by_name")
        and k != "histograms"  # wall-clock distributions, machine-local
    }
    return {
        "bench": record["bench"],
        "label": record["label"],
        "solver": record["solver"],
        "scenario": record["scenario"],
        "metrics": metrics,
    }


@pytest.mark.bench_smoke
class TestBenchDeterminism:
    def test_parallel_bench_counters_identical_to_serial(self):
        from repro.obs.bench import QUICK_MATRIX, run_bench_matrix

        serial = run_bench_matrix(QUICK_MATRIX)
        parallel = run_bench_matrix(QUICK_MATRIX, workers=2)
        for family in ("oneshot", "mcs"):
            assert [_strip_volatile(r) for r in parallel[family]] == [
                _strip_volatile(r) for r in serial[family]
            ]

    def test_quick_counters_match_committed_baseline(self):
        """Perf-regression tripwire: the pinned-seed quick matrix must
        reproduce the work counters of the committed BENCH baselines.  A
        drift in ``sets_evaluated`` / ``sets_by_context`` means a change
        altered *what* the solvers compute, not just how fast."""
        from repro.obs.bench import QUICK_MATRIX, run_bench_matrix

        fresh = run_bench_matrix(QUICK_MATRIX)
        keys_by_family = {
            "oneshot": ("sets_evaluated", "sets_by_context", "weight"),
            "mcs": (
                "sets_evaluated",
                "sets_by_context",
                "rrc_blocked",
                "rtc_silenced",
                "slots_to_completion",
            ),
        }
        for family, keys in keys_by_family.items():
            path = REPO_ROOT / f"BENCH_{family}.json"
            assert path.exists(), f"committed baseline {path.name} missing"
            runs = json.loads(path.read_text())["runs"]
            for record in fresh[family]:
                baselines = [r for r in runs if r["label"] == record["label"]]
                assert baselines, f"no committed baseline run for {record['label']}"
                latest = baselines[-1]
                for key in keys:
                    assert record["metrics"][key] == latest["metrics"][key], (
                        family,
                        record["label"],
                        key,
                    )
