"""Tests for the persistent worker pool (``repro.perf.pool``).

The pool's contract has four load-bearing clauses, each pinned here:

* **amortisation** — one fork per run (``pool_spawns == 1``) no matter how
  many slots/maps dispatch through it, where the legacy per-slot
  ``fork_map`` path spawns once per parallel dispatch;
* **bit-identity** — worker count and pool mode (fork / thread / serial)
  never change schedules or work counters;
* **clean shutdown** — exiting the pool (normally or through a solver
  exception) terminates and joins every child;
* **recorded degradation** — nested dispatches and post-fork closures fall
  back serially / one-shot with a counter and a once-per-process warning,
  never silently;
* **supervision** — a SIGKILLed or wedged worker never hangs a dispatch:
  the pool tears down, respawns within its budget (``pool_respawns``),
  enforces the per-dispatch deadline (``pool_deadline_hits``), and replays
  the payload slice serially as a last resort, all without changing
  results (:class:`~repro.obs.events.PoolRecovery`).

Plus the ``REPRO_WORKERS`` environment default honoured by every
``--workers`` CLI flag (precedence CLI > env > serial).
"""

import multiprocessing
import os
import signal
import warnings

import numpy as np
import pytest

from repro.obs.collectors import RunCollector
from repro.obs.events import PoolDispatch, PoolRecovery, TraceRecorder, recording
from repro.perf import parallel as parallel_module
from repro.perf import pool as pool_module
from repro.perf.parallel import env_default_workers, fork_map, in_pool_worker
from repro.perf.pool import WorkerPool
from repro.shard import ScaleDeployment, ShardSpec, run_scale_schedule
from repro.util.validation import check_workers

#: Small enough for CI, sharded enough (>= 4 live cells) that every slot
#: actually dispatches parallel work.
DEPLOYMENT = ScaleDeployment(num_readers=120, num_tags=1500, side=160.0, seed=7)
CELLS = 16
SEED = 11
MAX_SLOTS = 40

TIMING = (
    "solver_wall_clock_s",
    "solver_seconds_by_name",
    "stage_seconds_by_name",
    "pool_spawns",
    "pool_tasks",
    "pool_payload_bytes",
    "pool_respawns",
    "pool_deadline_hits",
    "relay_dropped_events",
    "histograms",
)


def run_scale(spec, record=True):
    """One pinned scale schedule; returns ``(result, metrics-or-None)``."""
    if not record:
        result = run_scale_schedule(
            DEPLOYMENT, spec, solver="ghc", seed=SEED, max_slots=MAX_SLOTS
        )
        return result, None
    collector = RunCollector()
    with recording(collector):
        result = run_scale_schedule(
            DEPLOYMENT, spec, solver="ghc", seed=SEED, max_slots=MAX_SLOTS
        )
    return result, collector.summary()


def strip_timing(summary):
    return {k: v for k, v in summary.items() if k not in TIMING}


def _double(x):
    """Module-level: picklable by reference, needs no registration."""
    return 2 * x


def _explode(x):
    raise ZeroDivisionError(f"worker failed on {x!r}")


def _die_until_marker(task):
    """Module-level: the first worker to see the marker file absent creates
    it and SIGKILLs itself (a transient crash — the respawned pool sees the
    marker and succeeds).  The ``in_pool_worker`` guard keeps the parent's
    serial replay from killing the test process."""
    x, marker = task
    if in_pool_worker() and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return 2 * x


def _die_always(x):
    """Module-level: every forked worker SIGKILLs itself on dispatch (a
    permanent crash regime — only the parent's serial replay can finish)."""
    if in_pool_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return 2 * x


def _hang_in_worker(x):
    """Module-level: wedges forever inside a worker (deadline fodder); runs
    instantly in the parent's serial replay."""
    if in_pool_worker():
        import time

        time.sleep(3600)
    return 2 * x


def no_leaked_children():
    for child in multiprocessing.active_children():
        child.join(timeout=5)
    return not multiprocessing.active_children()


class _Scaler:
    def __init__(self, k):
        self.k = k

    def mul(self, x):
        return self.k * x


class TestWorkerPool:
    def test_map_preserves_payload_order(self):
        with WorkerPool(4) as pool:
            assert pool.map(_double, range(20)) == [2 * i for i in range(20)]

    def test_one_spawn_across_many_maps(self):
        collector = RunCollector()
        with recording(collector), WorkerPool(2) as pool:
            for _ in range(5):
                pool.map(_double, [1, 2, 3])
        assert collector.pool_counters["pool_spawns"] == 1
        assert collector.pool_counters["pool_tasks"] == 15
        assert collector.pool_counters["pool_payload_bytes"] > 0
        stages = collector.stage_times.labels()
        assert "pool.dispatch" in stages and "pool.collect" in stages

    def test_dispatch_events_report_persistent_mode(self):
        rec = TraceRecorder()
        with recording(rec), WorkerPool(2) as pool:
            pool.map(_double, [1, 2])
            pool.map(_double, [3, 4])
        dispatches = [e for e in rec.events if isinstance(e, PoolDispatch)]
        assert [d.mode for d in dispatches] == ["fork", "fork"]
        # the spawn is charged to the dispatch that started the pool
        assert [d.spawned for d in dispatches] == [1, 0]

    def test_bound_method_roundtrip(self):
        scaler = _Scaler(10)
        with WorkerPool(2) as pool:
            pool.register(scaler.mul)
            # bound methods compare by value: re-accessing registers nothing
            assert pool.register(scaler.mul) == 0
            assert pool.map(scaler.mul, [1, 2, 3]) == [10, 20, 30]

    def test_serial_pool_runs_inline_and_emits_nothing(self):
        collector = RunCollector()
        with recording(collector), WorkerPool(1) as pool:
            assert pool.map(_double, [1, 2]) == [2, 4]
            assert not pool.started
        assert collector.pool_counters["pool_spawns"] == 0
        assert "pool_spawns" not in collector.summary()

    def test_register_after_fork_rejected(self):
        with WorkerPool(2) as pool:
            pool.map(_double, [1])
            with pytest.raises(RuntimeError, match="already forked"):
                pool.register(_Scaler(3).mul)

    def test_post_fork_closure_falls_back_oneshot(self):
        k = 7
        with WorkerPool(2) as pool:
            pool.map(_double, [1])  # fork now, closure not in the snapshot
            with pytest.warns(RuntimeWarning, match="falling back to one-shot"):
                out = pool.map(lambda x: k * x, [1, 2, 3])
        assert out == [7, 14, 21]
        assert pool.fallback_maps == 1

    def test_closed_pool_rejects_use(self):
        pool = WorkerPool(2)
        pool.map(_double, [1])
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_double, [2])
        assert no_leaked_children()

    def test_worker_exception_propagates_and_children_join(self):
        with pytest.raises(ZeroDivisionError, match="worker failed"):
            with WorkerPool(2) as pool:
                pool.map(_double, [1, 2])
                pool.map(_explode, [0, 1])  # raises inside a forked worker
        assert no_leaked_children()

    def test_thread_fallback_matches_fork_results(self, monkeypatch):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        monkeypatch.setattr(parallel_module, "_THREAD_FALLBACK_WARNED", False)
        rec = TraceRecorder()
        with pytest.warns(RuntimeWarning, match="os.fork unavailable"):
            with recording(rec), WorkerPool(3) as pool:
                assert pool.mode == "thread"
                out = pool.map(_double, range(10))
        assert out == [2 * i for i in range(10)]
        dispatches = [e for e in rec.events if isinstance(e, PoolDispatch)]
        assert [d.mode for d in dispatches] == ["thread"]
        assert dispatches[0].payload_bytes == 0  # threads never pickle

    def test_pool_inside_pool_worker_degrades_serially(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "_IN_POOL_WORKER", True)
        monkeypatch.setattr(parallel_module, "_NESTED_WARNED", True)
        before = parallel_module.nested_serial_calls
        with WorkerPool(4) as pool:
            assert pool.mode == "serial"
            assert pool.map(_double, [1, 2]) == [2, 4]
        assert parallel_module.nested_serial_calls == before + 1


class TestPoolSupervision:
    """A crashed or hung worker degrades a dispatch, never hangs or fails
    it: results stay payload-order correct through respawn and the serial
    last resort, and every recovery is recorded."""

    def test_transient_worker_death_respawns_and_results_correct(self, tmp_path):
        marker = str(tmp_path / "died-once")
        payloads = [(i, marker) for i in range(6)]
        rec = TraceRecorder()
        with recording(rec):
            with WorkerPool(2, respawn_backoff_s=0.0) as pool:
                out = pool.map(_die_until_marker, payloads)
        assert out == [2 * i for i in range(6)]
        assert pool.respawns >= 1
        assert pool.deadline_hits == 0
        recoveries = [e for e in rec.events if isinstance(e, PoolRecovery)]
        assert recoveries, "worker death must emit a PoolRecovery event"
        assert recoveries[0].reason == "worker-death"
        assert recoveries[0].respawned is True
        assert recoveries[0].serial_replay is False
        assert no_leaked_children()

    def test_permanent_crash_exhausts_budget_then_serial_replay(self):
        rec = TraceRecorder()
        with recording(rec):
            with WorkerPool(2, max_respawns=1, respawn_backoff_s=0.0) as pool:
                out = pool.map(_die_always, range(5))
                # the budget is spent: later maps run serially, deterministically
                again = pool.map(_die_always, range(5))
        assert out == [2 * i for i in range(5)]
        assert again == out
        assert pool.respawns == 1  # bounded by max_respawns
        recoveries = [e for e in rec.events if isinstance(e, PoolRecovery)]
        assert [r.respawned for r in recoveries] == [True, False]
        assert recoveries[-1].serial_replay is True
        assert no_leaked_children()

    def test_dispatch_deadline_hits_and_serial_replay(self):
        rec = TraceRecorder()
        with recording(rec):
            with WorkerPool(
                2, dispatch_deadline_s=0.3, max_respawns=0,
                respawn_backoff_s=0.0,
            ) as pool:
                out = pool.map(_hang_in_worker, range(4))
        assert out == [2 * i for i in range(4)]
        assert pool.deadline_hits == 1
        recoveries = [e for e in rec.events if isinstance(e, PoolRecovery)]
        assert [r.reason for r in recoveries] == ["deadline"]
        assert recoveries[0].serial_replay is True
        assert no_leaked_children()

    def test_collector_exports_supervision_counters(self):
        collector = RunCollector()
        with recording(collector):
            with WorkerPool(
                2, dispatch_deadline_s=0.3, max_respawns=0,
                respawn_backoff_s=0.0,
            ) as pool:
                assert pool.map(_hang_in_worker, [1, 2]) == [2, 4]
        summary = collector.summary()
        assert summary["pool_deadline_hits"] == 1
        assert summary["pool_respawns"] == 0
        assert no_leaked_children()

    def test_deadline_validation_and_env_default(self, monkeypatch):
        with pytest.raises(ValueError, match="dispatch_deadline_s"):
            WorkerPool(2, dispatch_deadline_s=0.0)
        monkeypatch.setenv("REPRO_POOL_DEADLINE", "2.5")
        assert WorkerPool(2)._deadline_s == 2.5
        for bad in ("", "  ", "soon", "-1", "0"):
            monkeypatch.setenv("REPRO_POOL_DEADLINE", bad)
            assert WorkerPool(2)._deadline_s is None
        monkeypatch.delenv("REPRO_POOL_DEADLINE")
        # an explicit constructor deadline beats the environment
        monkeypatch.setenv("REPRO_POOL_DEADLINE", "9")
        assert WorkerPool(2, dispatch_deadline_s=1.0)._deadline_s == 1.0

    def test_close_safe_after_failed_start(self, monkeypatch):
        pool = WorkerPool(2)

        def _no_fork(method):
            raise RuntimeError("fork refused")

        monkeypatch.setattr(pool_module.multiprocessing, "get_context", _no_fork)
        with pytest.raises(RuntimeError, match="fork refused"):
            pool.start()
        pool.close()  # must not raise on half-started state
        pool.close()  # and stays idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_double, [1])
        assert no_leaked_children()


class TestNestedForkMap:
    def test_nested_fork_map_counted_and_warned_once(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "_WORKER_FN", _double)
        monkeypatch.setattr(parallel_module, "_NESTED_WARNED", False)
        before = parallel_module.nested_serial_calls
        with pytest.warns(RuntimeWarning, match="nested parallel dispatch"):
            assert fork_map(_double, [1, 2], 4) == [2, 4]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second occurrence stays quiet
            assert fork_map(_double, [3], 4) == [6]
            assert fork_map(_double, [4, 5], 4) == [8, 10]
        assert parallel_module.nested_serial_calls == before + 2


class TestShardedBitIdentity:
    """Worker count / pool mode never change a sharded schedule."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_scale(ShardSpec(cells=CELLS))

    def test_pool_matches_serial(self, serial):
        result, metrics = serial
        pooled, pooled_metrics = run_scale(ShardSpec(cells=CELLS, workers=2))
        assert pooled.slots == result.slots
        assert pooled.tags_read_total == result.tags_read_total
        assert strip_timing(pooled_metrics) == strip_timing(metrics)
        # the tentpole claim: one fork for the whole run
        assert pooled_metrics["pool_spawns"] == 1
        assert "pool_spawns" not in metrics  # serial records keep their shape

    def test_legacy_fork_map_leg_matches_and_respawns(self, serial):
        result, metrics = serial
        legacy, legacy_metrics = run_scale(
            ShardSpec(cells=CELLS, workers=2, pool=False)
        )
        assert legacy.slots == result.slots
        assert strip_timing(legacy_metrics) == strip_timing(metrics)
        # the cost the pool amortises: one spawn per parallel slot
        assert legacy_metrics["pool_spawns"] == len(legacy.slots)

    def test_thread_mode_matches_serial(self, serial, monkeypatch):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        monkeypatch.setattr(parallel_module, "_THREAD_FALLBACK_WARNED", True)
        result, _ = serial
        threaded, _ = run_scale(ShardSpec(cells=CELLS, workers=2), record=False)
        assert threaded.slots == result.slots
        assert threaded.tags_read_total == result.tags_read_total

    def test_solver_exception_closes_pool_and_resets_runtime(self):
        from repro.shard.partition import ShardPartition
        from repro.shard.runtime import ShardRuntime
        from repro.obs.events import get_recorder
        from repro.util.rng import as_rng

        partition = ShardPartition.from_arrays(
            *DEPLOYMENT.materialize(), ShardSpec(cells=CELLS, workers=2)
        )
        runtime = ShardRuntime(partition, incremental=True)

        def exploding_solver(system, unread, rng, **kwargs):
            raise RuntimeError("solver blew up")

        with pytest.raises(RuntimeError, match="solver blew up"):
            with runtime.pool_scope(exploding_solver, False, get_recorder()):
                runtime.solve_slot(0, exploding_solver, as_rng(0), get_recorder())
        assert runtime._pool is None and runtime._solver is None
        assert no_leaked_children()


class TestReproWorkersEnv:
    def test_cli_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert env_default_workers(3) == 3

    def test_env_fills_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert env_default_workers(None) == 2

    def test_unset_and_blank_mean_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_default_workers(None) is None
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert env_default_workers(None) is None

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env_default_workers(None)

    def test_check_workers_validation(self):
        assert check_workers("workers", " -1 ") == -1
        assert check_workers("workers", np.int64(4)) == 4
        for bad in (True, 2.0, "2.5", None):
            with pytest.raises(ValueError):
                check_workers("workers", bad)

    def test_solve_cli_honours_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_WORKERS", "2")
        code = main([
            "solve", "--readers", "40", "--tags", "300", "--side", "120",
            "--seed", "3", "--schedule", "--shard-cells", "9",
        ])
        assert code == 0
        assert "covering schedule" in capsys.readouterr().out


@pytest.mark.scale_smoke
def test_scale_smoke_pool_honours_repro_workers():
    """The CI leg runs this under ``REPRO_WORKERS=2``: the env-selected
    worker count must leave the schedule bit-identical to serial, and a
    parallel run must show exactly one pool spawn."""
    workers = env_default_workers(None)
    serial_result, _ = run_scale(ShardSpec(cells=CELLS), record=False)
    result, metrics = run_scale(ShardSpec(cells=CELLS, workers=workers))
    assert result.slots == serial_result.slots
    assert result.tags_read_total == serial_result.tags_read_total
    if workers is not None and workers > 1 and os.cpu_count() is not None:
        assert metrics["pool_spawns"] == 1
