"""Cross-solver property suite.

Hypothesis-driven invariants every solver must satisfy on arbitrary small
systems — the contract the registry promises to downstream code.  Kept
separate from the per-solver test files so a new solver can be validated by
adding one line to ``SOLVERS``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import exact_mwfs, get_solver
from tests.conftest import system_strategy

#: (name, kwargs, deterministic-without-seed)
SOLVERS = [
    ("exact", {}, True),
    ("ptas", {"k": 2}, True),
    ("centralized", {"rho": 1.4}, True),
    ("distributed", {"rho": 1.4, "c": 1}, True),
    ("ghc", {}, True),
    ("ghc_naive", {}, True),
    ("colorwave", {}, False),
    ("random", {}, False),
]

COMMON_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.mark.parametrize("name,kwargs,_det", SOLVERS, ids=[s[0] for s in SOLVERS])
class TestUniversalInvariants:
    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**COMMON_SETTINGS)
    def test_weight_reported_honestly(self, name, kwargs, _det, system):
        result = get_solver(name, **kwargs)(system, None, 7)
        assert result.weight == system.weight(result.active)

    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**COMMON_SETTINGS)
    def test_never_beats_exact(self, name, kwargs, _det, system):
        result = get_solver(name, **kwargs)(system, None, 7)
        assert result.weight <= exact_mwfs(system).weight

    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**COMMON_SETTINGS)
    def test_active_indices_valid(self, name, kwargs, _det, system):
        result = get_solver(name, **kwargs)(system, None, 7)
        active = result.active
        assert len(set(active.tolist())) == len(active)
        if len(active):
            assert active.min() >= 0
            assert active.max() < system.num_readers

    @given(
        system=system_strategy(max_readers=7, max_tags=25),
        data=st.data(),
    )
    @settings(**COMMON_SETTINGS)
    def test_unread_mask_caps_weight(self, name, kwargs, _det, system, data):
        m = system.num_tags
        unread = np.array(
            [data.draw(st.booleans()) for _ in range(m)], dtype=bool
        )
        result = get_solver(name, **kwargs)(system, unread, 7)
        cap = int((system.covered_by_any() & unread).sum())
        assert result.weight <= cap


@pytest.mark.parametrize(
    "name,kwargs",
    [(n, k) for n, k, det in SOLVERS if det],
    ids=[s[0] for s in SOLVERS if s[2]],
)
class TestDeterministicSolvers:
    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**COMMON_SETTINGS)
    def test_same_input_same_output(self, name, kwargs, system):
        a = get_solver(name, **kwargs)(system, None, None)
        b = get_solver(name, **kwargs)(system, None, None)
        np.testing.assert_array_equal(a.active, b.active)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("exact", {}),
        ("ptas", {"k": 2}),
        ("centralized", {"rho": 1.4}),
        ("distributed", {"rho": 1.4, "c": 1}),
        ("colorwave", {}),
        ("random", {}),
    ],
)
class TestFeasibilityGuaranteedSolvers:
    """Every solver except GHC promises feasible output."""

    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**COMMON_SETTINGS)
    def test_always_feasible(self, name, kwargs, system):
        result = get_solver(name, **kwargs)(system, None, 7)
        assert result.feasible
        assert system.is_feasible(result.active)
