"""Second property-test battery: cross-cutting invariants of the stack.

Complements ``test_property_solvers`` (solver contract) with randomized
invariants of persistence, multi-channel semantics, the shifted hierarchy's
integer arithmetic and the MCS driver.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_solver, greedy_covering_schedule
from repro.core.multichannel import (
    ChannelAssignment,
    empty_assignment,
    greedy_multichannel_assignment,
    is_channel_feasible,
    multichannel_weight,
)
from repro.geometry.shifting import ShiftedHierarchy, Square
from repro.io import system_from_dict, system_to_dict
from tests.conftest import system_strategy

RELAXED = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPersistenceProperties:
    @given(system=system_strategy(max_readers=8, max_tags=25))
    @settings(**RELAXED)
    def test_roundtrip_preserves_all_matrices(self, system):
        clone = system_from_dict(system_to_dict(system))
        np.testing.assert_array_equal(clone.coverage, system.coverage)
        np.testing.assert_array_equal(clone.conflict, system.conflict)
        np.testing.assert_array_equal(
            clone.in_interference_range, system.in_interference_range
        )

    @given(system=system_strategy(max_readers=8, max_tags=25))
    @settings(**RELAXED)
    def test_roundtrip_preserves_solver_output(self, system):
        clone = system_from_dict(system_to_dict(system))
        a = get_solver("exact")(system, None, None)
        b = get_solver("exact")(clone, None, None)
        np.testing.assert_array_equal(a.active, b.active)


class TestMultichannelProperties:
    @given(
        system=system_strategy(max_readers=8, max_tags=25),
        channels=st.integers(1, 4),
    )
    @settings(**RELAXED)
    def test_greedy_assignment_always_channel_feasible(self, system, channels):
        assignment = greedy_multichannel_assignment(system, channels)
        assert is_channel_feasible(system, assignment)

    @given(system=system_strategy(max_readers=8, max_tags=25), data=st.data())
    @settings(**RELAXED)
    def test_single_channel_weight_matches_paper_model(self, system, data):
        n = system.num_readers
        members = data.draw(
            st.lists(st.integers(0, n - 1), max_size=n, unique=True)
        )
        assignment = empty_assignment(system, 1)
        for m in members:
            assignment = assignment.with_reader(m, 0)
        assert multichannel_weight(system, assignment) == system.weight(members)

    @given(system=system_strategy(max_readers=8, max_tags=25))
    @settings(**RELAXED)
    def test_weight_monotone_in_channels(self, system):
        weights = [
            multichannel_weight(system, greedy_multichannel_assignment(system, c))
            for c in (1, 2, 4)
        ]
        assert weights[0] <= weights[1] <= weights[2]


class TestShiftingProperties:
    @given(
        k=st.integers(2, 5),
        r=st.integers(0, 4),
        s=st.integers(0, 4),
        level=st.integers(0, 3),
        x=st.floats(-50, 50, allow_nan=False),
        y=st.floats(-50, 50, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_square_nesting_chain(self, k, r, s, level, x, y):
        r, s = r % k, s % k
        h = ShiftedHierarchy(
            np.array([[0.0, 0.0]]), np.array([0.5]), k=k, r=r, s=s
        )
        child = h.square_at(level + 1, (x, y))
        parent = h.square_at(level, (x, y))
        assert h.parent(child) == parent
        assert child in h.children(parent)
        assert h.ancestor(child, level) == parent

    @given(
        k=st.integers(2, 4),
        col=st.integers(-6, 6),
        row=st.integers(-6, 6),
        level=st.integers(0, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_children_partition_area(self, k, col, row, level):
        h = ShiftedHierarchy(
            np.array([[0.0, 0.0]]), np.array([0.5]), k=k, r=1 % k, s=0
        )
        sq = Square(level, col, row)
        x0, x1, y0, y1 = h.square_bounds(sq)
        kids = h.children(sq)
        assert len(kids) == (k + 1) ** 2
        total = sum(
            (b[1] - b[0]) * (b[3] - b[2]) for b in map(h.square_bounds, kids)
        )
        assert total == pytest.approx((x1 - x0) * (y1 - y0))


class TestMcsProperties:
    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**RELAXED)
    def test_schedule_partitions_coverable_tags(self, system):
        result = greedy_covering_schedule(system, get_solver("exact"))
        assert result.complete
        seen = [t for slot in result.slots for t in slot.tags_read.tolist()]
        assert len(seen) == len(set(seen))
        coverable = set(np.flatnonzero(system.covered_by_any()).tolist())
        assert set(seen) == coverable

    @given(system=system_strategy(max_readers=7, max_tags=25))
    @settings(**RELAXED)
    def test_every_slot_weight_positive(self, system):
        result = greedy_covering_schedule(system, get_solver("exact"))
        for slot in result.slots:
            assert slot.num_read >= 1
