"""Tests for the scale tier's sparse driver and benchmark matrix.

``run_scale_schedule`` (the array-first driver that never builds global
dense matrices) is checked against the sharded **and** unsharded MCS
drivers on a deployment small enough to afford both; the ``scale_smoke``
marker runs a reduced scale matrix end-to-end under both kernel backends
and schema-validates the ``BENCH_scale.json`` records.
"""

import os
import signal
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.core import get_solver, greedy_covering_schedule
from repro.faults import FaultPlan, FaultPolicy, PermanentCrash
from repro.model.system import build_system
from repro.perf import pool as pool_module
from repro.perf.parallel import in_pool_worker
from repro.obs.export import REQUIRED_METRICS, load_bench, validate_run
from repro.shard import ScaleDeployment, ShardSpec, run_scale_schedule
from repro.shard.bench import (
    FULL_POINTS,
    IDENT_POINTS,
    QUICK_POINTS,
    ScalePoint,
    format_scale_table,
    run_scale_matrix,
    write_scale_files,
)

#: Small enough for the dense reference drivers, big enough to shard.
SMALL = ScaleDeployment(num_readers=150, num_tags=2000, side=250.0, seed=17)


def small_point(label, **overrides):
    kw = dict(
        solver="ghc", driver="mcs",
        num_readers=40, num_tags=400, side=100.0,
        lambda_interference=10.0, lambda_interrogation=5.0, seed=13,
    )
    kw.update(overrides)
    return ScalePoint(label=label, **kw)


#: The quick matrix, shrunk to CI size: the ident pair certifies the
#: trivial sharded path, the sharded mcs and array points cover both
#: drivers.  Same shape as ``QUICK_POINTS``/``FULL_POINTS``, ~100x smaller.
SMOKE_POINTS = (
    small_point("smoke_ident"),
    small_point("smoke_ident", shard_cells=1),
    small_point(
        "smoke_shard",
        num_readers=60, num_tags=600, side=200.0, seed=5, shard_cells=16,
    ),
    small_point(
        "smoke_array", driver="array",
        num_readers=SMALL.num_readers, num_tags=SMALL.num_tags,
        side=SMALL.side, seed=SMALL.seed, shard_cells=0,
    ),
)


class TestScaleDriver:
    @pytest.fixture(scope="class")
    def arrays(self):
        return SMALL.materialize()

    @pytest.fixture(scope="class")
    def scale_result(self):
        return run_scale_schedule(SMALL, ShardSpec(cells=0), seed=17)

    def test_materialize_is_reproducible(self, arrays):
        again = ScaleDeployment(
            num_readers=150, num_tags=2000, side=250.0, seed=17
        ).materialize()
        for a, b in zip(arrays, again):
            assert np.array_equal(a, b)

    def test_matches_sharded_mcs_slot_for_slot(self, arrays, scale_result):
        """Same partition, same seed, same solver -> the sparse driver and
        the dense sharded MCS driver walk the same schedule."""
        system = build_system(*arrays)
        dense = greedy_covering_schedule(
            system, get_solver("ghc"), seed=17, incremental=True,
            shard=ShardSpec(cells=0),
        )
        assert scale_result.size == dense.size
        assert scale_result.complete == dense.complete
        assert scale_result.tags_read_total == dense.tags_read_total
        assert scale_result.uncoverable_tags == len(dense.uncovered_tags)
        for sparse_slot, dense_slot in zip(scale_result.slots, dense.slots):
            assert sparse_slot.active_readers == len(dense_slot.active)
            assert sparse_slot.tags_read == len(dense_slot.tags_read)

    def test_matches_unsharded_coverage(self, arrays, scale_result):
        system = build_system(*arrays)
        base = greedy_covering_schedule(system, get_solver("ghc"), seed=17)
        assert scale_result.complete == base.complete
        assert scale_result.tags_read_total == base.tags_read_total
        assert scale_result.uncoverable_tags == len(base.uncovered_tags)

    def test_deterministic(self, scale_result):
        again = run_scale_schedule(SMALL, ShardSpec(cells=0), seed=17)
        assert again.slots == scale_result.slots
        assert again.tags_read_total == scale_result.tags_read_total

    def test_max_slots_cap(self):
        capped = run_scale_schedule(
            SMALL, ShardSpec(cells=0), seed=17, max_slots=2
        )
        assert capped.size == 2
        assert not capped.complete

    def test_trivial_deployment_rejected(self):
        tiny = ScaleDeployment(num_readers=5, num_tags=20, side=5.0, seed=1)
        with pytest.raises(ValueError):
            run_scale_schedule(tiny, ShardSpec(cells=0))


class TestScaleFaults:
    """The sparse driver's fault composition: deterministic degraded
    worlds, membership-driven refresh, and liveness under total loss."""

    DEPLOY = ScaleDeployment(num_readers=120, num_tags=1500, side=160.0, seed=7)

    def test_fault_free_outcome_is_complete(self):
        result = run_scale_schedule(self.DEPLOY, ShardSpec(cells=16), seed=11)
        assert result.complete
        assert result.outcome == "complete"

    def test_flaky_world_completes_and_is_worker_independent(self):
        plan = FaultPlan.uniform_flaky(
            self.DEPLOY.num_readers, 0.1, miss_rate=0.1, seed=3
        )
        serial = run_scale_schedule(
            self.DEPLOY, ShardSpec(cells=16), seed=11, faults=plan
        )
        pooled = run_scale_schedule(
            self.DEPLOY, ShardSpec(cells=16, workers=3), seed=11, faults=plan
        )
        assert serial.complete
        assert serial.outcome == "complete"
        # fault draws are keyed by (seed, slot): worker count cannot move them
        assert pooled.slots == serial.slots
        assert pooled.tags_read_total == serial.tags_read_total
        assert pooled.outcome == serial.outcome
        # the fault world costs slots relative to the fault-free run
        clean = run_scale_schedule(self.DEPLOY, ShardSpec(cells=16), seed=11)
        assert serial.size >= clean.size
        assert serial.tags_read_total == clean.tags_read_total

    def test_permanent_crashes_stall_with_partial_coverage(self):
        # crash a handful of readers for good: their exclusively-owned
        # tags become unreachable, so the run stalls after reading the rest
        plan = FaultPlan(
            reader_faults=tuple(PermanentCrash(r, 0) for r in range(6)),
            miss_rate=0.2,
            seed=3,
        )
        result = run_scale_schedule(
            self.DEPLOY, ShardSpec(cells=16), seed=11, faults=plan,
            policy=FaultPolicy(max_stall_slots=6),
        )
        assert result.outcome == "stalled"
        assert not result.complete
        # everything not exclusively owned by the dead readers was read
        assert result.tags_read_total > 0

    def test_total_miss_world_terminates_stalled(self):
        # liveness: with every read lost, the stall guard must end the run
        # in exactly max_stall_slots slots — never spin to the slot cap
        plan = FaultPlan(miss_rate=1.0, seed=1)
        result = run_scale_schedule(
            self.DEPLOY, ShardSpec(cells=16), seed=11, faults=plan,
            max_stall_slots=6,
        )
        assert result.outcome == "stalled"
        assert result.size == 6
        assert result.tags_read_total == 0


#: Marker path for the crash-mid-bench injection below.  Module-level so
#: forked pool workers inherit it (the wrapper is pickled by reference and
#: resolved against this module inside the child).
_CRASH_MARKER = None
_REAL_POOL_INVOKE = pool_module._pool_invoke


def _invoke_killing_once(task):
    """`_pool_invoke` wrapper: the first worker to run a task SIGKILLs
    itself mid-dispatch (exactly once, marker-file guarded); every later
    invocation — including the post-respawn retry — delegates unchanged."""
    if (
        in_pool_worker()
        and _CRASH_MARKER is not None
        and not os.path.exists(_CRASH_MARKER)
    ):
        with open(_CRASH_MARKER, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_POOL_INVOKE(task)


class TestCrashMidBench:
    def test_worker_crash_mid_bench_keeps_bench_schema_valid(
        self, tmp_path, monkeypatch
    ):
        """A pool worker SIGKILLed while holding a dispatched chunk must
        not corrupt anything: the supervisor respawns, the matrix finishes
        with the same schedule as an uninjured run, and the appended
        ``BENCH_scale.json`` stays schema-valid (the atomic ``merge_run``
        contract).  The deadline env is a belt-and-braces bound in case
        ``multiprocessing.Pool``'s worker-maintenance thread absorbs the
        death before the supervisor's health poll sees it."""
        monkeypatch.setenv("REPRO_POOL_DEADLINE", "5")
        monkeypatch.setattr(
            sys.modules[__name__], "_CRASH_MARKER", str(tmp_path / "killed")
        )
        monkeypatch.setattr(pool_module, "_pool_invoke", _invoke_killing_once)
        point = small_point(
            "smoke_crash",
            num_readers=60, num_tags=600, side=200.0, seed=5,
            shard_cells=16, workers=2,
        )
        records = run_scale_matrix((point,))
        monkeypatch.undo()
        assert os.path.exists(str(tmp_path / "killed")), (
            "the crash must land mid-run"
        )
        paths = write_scale_files(records, tmp_path)
        data = load_bench(paths["scale"])
        assert len(data["runs"]) == 1
        for run in data["runs"]:
            validate_run(run)
        metrics = data["runs"][0]["metrics"]
        assert metrics["complete"] is True
        assert metrics["pool_respawns"] >= 1
        # the recovered schedule matches an uninjured serial run
        clean = run_scale_matrix((small_point(
            "smoke_crash",
            num_readers=60, num_tags=600, side=200.0, seed=5,
            shard_cells=16,
        ),))["scale"][0]["metrics"]
        assert metrics["slots"] == clean["slots"]
        assert metrics["tags_read"] == clean["tags_read"]


class TestMatrixDefinitions:
    def test_ident_pair_shares_label_and_scenario(self):
        a, b = IDENT_POINTS
        assert a.label == b.label
        assert a.shard_cells is None and b.shard_cells == 1
        assert a.scenario_dict()["seed"] == b.scenario_dict()["seed"]

    def test_full_matrix_extends_quick(self):
        assert QUICK_POINTS == FULL_POINTS[: len(QUICK_POINTS)]
        full = FULL_POINTS[-1]
        assert full.driver == "array"
        assert full.num_readers == 10_000 and full.num_tags == 1_000_000

    def test_table_handles_empty(self):
        assert "(no scale records)" in format_scale_table({"scale": []})


@pytest.mark.scale_smoke
@pytest.mark.parametrize("backend", ["numpy", "pure"])
def test_scale_smoke_end_to_end(tmp_path, backend):
    """Reduced scale matrix -> records -> BENCH_scale.json, both backends."""
    records = run_scale_matrix(SMOKE_POINTS, backend=backend)
    assert set(records) == {"scale"}
    runs = records["scale"]
    assert len(runs) == len(SMOKE_POINTS)
    for run in runs:
        validate_run(run)
        assert run["bench"] == "scale"
        assert run["backend"] == backend
        for field in REQUIRED_METRICS["scale"]:
            assert field in run["metrics"], field
        # the scale family always measures memory
        assert run["metrics"]["peak_tracemalloc_kb"] > 0.0
        assert run["metrics"]["complete"]

    # ident pair: identical work counters (the bit-identity certificate)
    base, trivial = runs[0], runs[1]
    noise = ("_s", "_by_name", "_kb", "histograms")
    strip = lambda m: {k: v for k, v in m.items() if not k.endswith(noise)}
    assert strip(base["metrics"]) == strip(trivial["metrics"])

    # sharded runs carry the shard work counters, unsharded do not
    assert "shard_cells" not in base["metrics"]
    assert runs[2]["metrics"]["shard_cells"] > 1
    assert runs[3]["metrics"]["shard_cells"] > 1

    path = write_scale_files(records, tmp_path)["scale"]
    assert path == tmp_path / "BENCH_scale.json"
    data = load_bench(path)
    assert len(data["runs"]) == len(runs)
    for run in data["runs"]:
        validate_run(run)


class TestCLI:
    def test_solve_with_shard(self, capsys):
        code = main([
            "solve", "--readers", "40", "--tags", "300", "--side", "120",
            "--seed", "3", "--schedule", "--shard-cells", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "covering schedule" in out
        assert "complete=True" in out

    def test_shard_requires_schedule(self, capsys):
        code = main([
            "solve", "--readers", "10", "--tags", "50", "--shard-cells", "4",
        ])
        assert code == 2
        assert "--shard-cells requires --schedule" in capsys.readouterr().err

    def test_bench_scale_dry_run(self, tmp_path, monkeypatch, capsys):
        """CLI wiring only — the matrix itself is monkeypatched (the real
        quick points are minutes of work, covered by the smoke marker)."""
        import repro.shard.bench as shard_bench

        canned = run_scale_matrix(SMOKE_POINTS[:2])
        seen = {}

        def fake_matrix(points, backend=None):
            seen["points"] = list(points)
            return canned

        monkeypatch.setattr(shard_bench, "run_scale_matrix", fake_matrix)
        code = main([
            "bench", "--scale", "--quick", "--dry-run",
            "--shard-cells", "64", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scale matrix" in out
        assert "smoke_ident" in out
        assert not (tmp_path / "BENCH_scale.json").exists()
        # --shard-cells rewrote the sharded points only
        assert len(seen["points"]) == len(QUICK_POINTS)
        for point in seen["points"]:
            if point.shard_cells is not None:
                assert point.shard_cells == 64

    def test_bench_scale_writes_file(self, tmp_path, monkeypatch, capsys):
        import repro.shard.bench as shard_bench

        canned = run_scale_matrix(SMOKE_POINTS[:2])
        monkeypatch.setattr(
            shard_bench, "run_scale_matrix", lambda points, backend=None: canned
        )
        code = main([
            "bench", "--scale", "--quick", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        assert "appended 2 scale runs" in capsys.readouterr().out
        data = load_bench(tmp_path / "BENCH_scale.json")
        assert len(data["runs"]) == 2
