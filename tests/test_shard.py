"""Tests for the spatial sharding subsystem (``repro.shard``).

Covers the three certificates of ``docs/scale.md``:

* ``cells == 1`` is **bit-identical** to the unsharded driver — schedules
  and all non-timing work counters;
* non-trivial sharding is **coverage-equivalent** — same tags read, same
  completeness — and its merged active sets never carry a cross-cell
  conflict, including on hand-built adversarial boundary scenarios (reader
  balls straddling two and four cells, tags exactly on cell edges);
* worker count never changes results.
"""

import numpy as np
import pytest

from repro.core import get_solver, greedy_covering_schedule
from repro.deployment.scenario import Scenario
from repro.obs.collectors import RunCollector
from repro.obs.events import recording
from repro.shard import (
    ShardPartition,
    ShardRuntime,
    ShardSpec,
    interaction_radius,
)

#: Metric fields that vary run to run by construction: wall-clock noise,
#: plus the parallel-tier dispatch counters (present only on parallel runs
#: — spawn counts and payload bytes are telemetry about *how* the work was
#: dispatched, not *what* was computed).
TIMING = (
    "solver_wall_clock_s",
    "solver_seconds_by_name",
    "stage_seconds_by_name",
    "peak_tracemalloc_kb",
    "peak_rss_kb",
    "pool_spawns",
    "pool_tasks",
    "pool_payload_bytes",
    "pool_respawns",
    "pool_deadline_hits",
    "relay_dropped_events",
    "histograms",
)


def strip_timing(summary):
    return {k: v for k, v in summary.items() if k not in TIMING}


def run_collected(system, solver, **kwargs):
    """Schedule *system* under a fresh collector; returns (result, summary)."""
    collector = RunCollector()
    with recording(collector):
        result = greedy_covering_schedule(system, solver, **kwargs)
    return result, collector.summary()


def assert_same_schedule(a, b):
    """Slot-for-slot bit identity of two ScheduleResults."""
    assert a.size == b.size
    for sa, sb in zip(a.slots, b.slots):
        assert np.array_equal(sa.active, sb.active)
        assert np.array_equal(sa.tags_read, sb.tags_read)
    assert a.tags_read_total == b.tags_read_total
    assert a.complete == b.complete
    assert np.array_equal(a.uncovered_tags, b.uncovered_tags)


@pytest.fixture(scope="module")
def medium_system():
    """Spread-out deployment that shards into a healthy number of cells."""
    return Scenario(
        num_readers=60, num_tags=600, side=200.0,
        lambda_interference=10.0, lambda_interrogation=5.0, seed=5,
    ).build()


class TestSpec:
    def test_interaction_radius(self):
        R = np.array([3.0, 8.0, 2.0])
        gamma = np.array([1.0, 2.0, 5.0])
        assert interaction_radius(R, gamma) == 10.0  # 2 * gamma_max wins
        assert interaction_radius(np.array([9.0]), np.array([1.0])) == 9.0
        assert interaction_radius(np.empty(0), np.empty(0)) == 0.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(cells=-1)
        with pytest.raises(ValueError):
            ShardSpec(halo_scale=0.5)
        # auto, trivial and explicit targets are all fine
        ShardSpec(cells=0)
        ShardSpec(cells=1)
        ShardSpec(cells=16, workers=4)

    def test_cell_side_clamped_to_interaction_radius(self):
        spec = ShardSpec(cells=10_000)
        R = np.array([6.0, 4.0])
        gamma = np.array([2.0, 1.0])
        # the target would want tiny cells; the clamp keeps side >= H
        assert spec.cell_side(R, gamma, extent=100.0) == 6.0


class TestPartitionInvariants:
    @pytest.fixture(scope="class")
    def partition(self, medium_system):
        return ShardPartition.from_system(medium_system, ShardSpec(cells=16))

    def test_nontrivial_and_indexed(self, partition):
        assert not partition.is_trivial
        assert partition.num_cells > 1
        for i, cell in enumerate(partition.cells):
            assert cell.index == i

    def test_readers_partitioned(self, partition, medium_system):
        seen = np.concatenate([c.reader_ids for c in partition.cells])
        assert np.array_equal(np.sort(seen), np.arange(medium_system.num_readers))
        for cell in partition.cells:
            assert (partition.cell_of_reader[cell.reader_ids] == cell.index).all()

    def test_local_global_maps_consistent(self, partition, medium_system):
        for cell in partition.cells:
            union = np.sort(
                np.concatenate([cell.reader_ids, cell.halo_reader_ids])
            )
            assert np.array_equal(cell.all_reader_ids, union)
            assert np.array_equal(
                cell.subsystem.reader_positions,
                medium_system.reader_positions[cell.all_reader_ids],
            )
            assert np.array_equal(
                cell.subsystem.tag_positions,
                medium_system.tag_positions[cell.tag_ids],
            )
            assert np.array_equal(
                cell.all_reader_ids[cell.owned_reader_mask], cell.reader_ids
            )

    def test_owner_cell_can_cover_its_tags(self, partition, medium_system):
        """Every coverable tag's owner cell owns a reader covering it —
        the liveness guarantee behind ``best_singleton``."""
        cov = medium_system.coverage  # (m, n) boolean: tags x readers
        owner = partition.owner_of_tag
        uncoverable = ~cov.any(axis=1)
        assert (owner[uncoverable] == -1).all()
        assert (owner[~uncoverable] >= 0).all()
        for cell in partition.cells:
            mine = np.flatnonzero(owner == cell.index)
            assert cov[np.ix_(mine, cell.reader_ids)].any(axis=1).all()

    def test_halos_cover_cross_cell_conflicts(self, partition, medium_system):
        """If readers of different cells can conflict, each cell imports
        the other's reader as halo (the one-ring contract)."""
        pos = medium_system.reader_positions
        R = medium_system.interference_radii
        n = medium_system.num_readers
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.sqrt((diff * diff).sum(axis=-1))
        rmax = np.maximum(R[:, None], R[None, :])
        owner = partition.cell_of_reader
        for i in range(n):
            for j in range(i + 1, n):
                if d[i, j] <= rmax[i, j] and owner[i] != owner[j]:
                    assert j in partition.cells[owner[i]].all_reader_ids
                    assert i in partition.cells[owner[j]].all_reader_ids

    def test_trivial_cases(self, medium_system):
        one = ShardPartition.from_system(medium_system, ShardSpec(cells=1))
        assert one.is_trivial
        assert one.system is medium_system
        # the whole deployment fits in one interaction radius -> one bucket
        rpos = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        auto = ShardPartition.from_arrays(
            rpos, np.full(3, 5.0), np.full(3, 2.0),
            np.array([[1.0, 0.5]]), ShardSpec(cells=0),
        )
        assert auto.is_trivial
        # no readers at all is trivial too
        empty = ShardPartition.from_arrays(
            np.empty((0, 2)), np.empty(0), np.empty(0),
            np.empty((0, 2)), ShardSpec(cells=0),
        )
        assert empty.is_trivial


class TestCellsOneBitIdentity:
    """The trivial sharded path must be indistinguishable from no sharding."""

    @pytest.fixture(scope="class")
    def system(self):
        return Scenario(
            num_readers=40, num_tags=400, side=100.0, seed=13
        ).build()

    @pytest.mark.parametrize("incremental", [False, True])
    def test_schedule_and_counters_identical(self, system, incremental):
        base, base_sum = run_collected(
            system, get_solver("ghc"), seed=3, incremental=incremental
        )
        shard, shard_sum = run_collected(
            system, get_solver("ghc"), seed=3, incremental=incremental,
            shard=ShardSpec(cells=1),
        )
        assert_same_schedule(base, shard)
        assert strip_timing(base_sum) == strip_timing(shard_sum)

    def test_trivial_records_no_shard_counters(self, system):
        _, summary = run_collected(
            system, get_solver("ghc"), seed=3, shard=ShardSpec(cells=1)
        )
        assert "shard_cells" not in summary


class TestShardedEquivalence:
    @pytest.fixture(scope="class")
    def runs(self, medium_system):
        solver = get_solver("ghc")
        base, base_sum = run_collected(medium_system, solver, seed=9)
        shard, shard_sum = run_collected(
            medium_system, solver, seed=9, shard=ShardSpec(cells=16)
        )
        return base, base_sum, shard, shard_sum

    def test_coverage_equivalent(self, runs):
        base, _, shard, _ = runs
        assert shard.complete == base.complete
        assert shard.tags_read_total == base.tags_read_total
        assert np.array_equal(shard.uncovered_tags, base.uncovered_tags)
        # every coverable tag read exactly once overall
        base_read = np.sort(np.concatenate([s.tags_read for s in base.slots]))
        shard_read = np.sort(np.concatenate([s.tags_read for s in shard.slots]))
        assert np.array_equal(shard_read, base_read)

    def test_no_cross_cell_conflicts_survive(self, runs, medium_system):
        _, _, shard, _ = runs
        partition = ShardPartition.from_system(medium_system, ShardSpec(cells=16))
        owner = partition.cell_of_reader
        for slot in shard.slots:
            act = slot.active
            for a in range(len(act)):
                for b in range(a + 1, len(act)):
                    i, j = int(act[a]), int(act[b])
                    if owner[i] != owner[j]:
                        assert not medium_system.conflict[i, j]

    def test_shard_counters_exported(self, runs):
        _, base_sum, _, shard_sum = runs
        assert "shard_cells" not in base_sum
        assert shard_sum["shard_cells"] > 0
        assert shard_sum["shard_halo_readers"] > 0
        assert shard_sum["shard_boundary_repairs"] >= 0

    def test_workers_do_not_change_results(self, medium_system):
        solver = get_solver("ghc")
        serial, serial_sum = run_collected(
            medium_system, solver, seed=9,
            shard=ShardSpec(cells=16, workers=1),
        )
        forked, forked_sum = run_collected(
            medium_system, solver, seed=9,
            shard=ShardSpec(cells=16, workers=3),
        )
        assert_same_schedule(serial, forked)
        assert strip_timing(serial_sum) == strip_timing(forked_sum)

class TestShardFaultComposition:
    """``shard=`` composes with ``faults=``: degraded per-cell solves,
    deterministic suspicion payloads, and incremental partition refresh
    on confirmed permanent crashes (``docs/robustness.md``)."""

    @pytest.fixture(scope="class")
    def flaky_plan(self, medium_system):
        from repro.faults import FaultPlan

        return FaultPlan.uniform_flaky(
            medium_system.num_readers, p_fail=0.1, miss_rate=0.1, seed=1
        )

    @pytest.mark.parametrize(
        "solver_name",
        ["exact", "ptas", "localsearch", "centralized", "distributed", "ghc"],
    )
    def test_all_solvers_complete_under_faults(
        self, medium_system, flaky_plan, solver_name
    ):
        from repro.experiments.figures import SOLVER_KWARGS

        solver = get_solver(
            solver_name, **SOLVER_KWARGS.get(solver_name, {})
        )
        result = greedy_covering_schedule(
            medium_system, solver, seed=9, faults=flaky_plan,
            shard=ShardSpec(cells=16),
        )
        coverable = int(medium_system.covered_by_any().sum())
        assert result.complete
        assert result.tags_read_total == coverable

    def test_fault_draws_identical_across_workers_and_pool(
        self, medium_system, flaky_plan
    ):
        solver = get_solver("ghc")

        def run(**shard_kwargs):
            return run_collected(
                medium_system, solver, seed=9, faults=flaky_plan,
                shard=ShardSpec(cells=16, **shard_kwargs),
            )

        serial, serial_sum = run(workers=1)
        pooled, pooled_sum = run(workers=3)
        forked, forked_sum = run(workers=3, pool=False)
        assert_same_schedule(serial, pooled)
        assert_same_schedule(serial, forked)
        assert serial.fault_trace == pooled.fault_trace == forked.fault_trace
        assert (
            strip_timing(serial_sum)
            == strip_timing(pooled_sum)
            == strip_timing(forked_sum)
        )

    def test_trivial_partition_matches_unsharded_fault_path(
        self, medium_system, flaky_plan
    ):
        solver = get_solver("ghc")
        base, base_sum = run_collected(
            medium_system, solver, seed=9, faults=flaky_plan
        )
        shard, shard_sum = run_collected(
            medium_system, solver, seed=9, faults=flaky_plan,
            shard=ShardSpec(cells=1),
        )
        assert_same_schedule(base, shard)
        assert base.fault_trace == shard.fault_trace
        assert strip_timing(base_sum) == strip_timing(shard_sum)

    def test_confirmed_permanent_crash_triggers_refresh(self, medium_system):
        from repro.faults import FaultPlan
        from repro.faults.plan import PermanentCrash
        from repro.obs.events import SpanStart, TraceRecorder

        plan = FaultPlan(
            reader_faults=(PermanentCrash(reader=2, at_slot=0),),
            miss_rate=0.3, seed=11,
        )
        tracer = TraceRecorder()
        with recording(tracer):
            result = greedy_covering_schedule(
                medium_system, get_solver("ghc"), seed=9, faults=plan,
                shard=ShardSpec(cells=16),
            )
        refreshes = [
            e for e in tracer.events
            if isinstance(e, SpanStart) and e.name == "shard.refresh"
        ]
        assert len(refreshes) == 1  # one crash, confirmed exactly once
        # the run still reads every tag reachable without the dead reader
        unread = np.ones(medium_system.num_tags, dtype=bool)
        for s in result.slots:
            unread[s.tags_read] = False
        alive = np.ones(medium_system.num_readers, dtype=bool)
        alive[2] = False
        left = np.flatnonzero(unread & medium_system.covered_by_any())
        reachable = medium_system.coverage[
            np.ix_(left, np.flatnonzero(alive))
        ]
        assert not reachable.any()

    def test_partition_refresh_opt_out(self, medium_system):
        from repro.faults import FaultPlan, FaultPolicy
        from repro.faults.plan import PermanentCrash
        from repro.obs.events import SpanStart, TraceRecorder

        plan = FaultPlan(
            reader_faults=(PermanentCrash(reader=2, at_slot=0),), seed=11
        )
        tracer = TraceRecorder()
        with recording(tracer):
            greedy_covering_schedule(
                medium_system, get_solver("ghc"), seed=9, faults=plan,
                policy=FaultPolicy(partition_refresh=False),
                shard=ShardSpec(cells=16),
            )
        assert not any(
            isinstance(e, SpanStart) and e.name == "shard.refresh"
            for e in tracer.events
        )

    def test_retire_readers_rebuckets_orphans(self, medium_system):
        """Direct partition-level check: killing a cell's reader re-homes
        its tags to surviving covering readers or orphans them."""
        partition = ShardPartition.from_system(
            medium_system, ShardSpec(cells=16)
        )
        victim = int(partition.cells[0].reader_ids[0])
        owned_before = np.flatnonzero(partition.owner_of_tag >= 0)
        report = partition.retire_readers([victim])
        assert report.retired == (victim,)
        assert not partition.reader_alive[victim]
        # every formerly-owned tag is re-homed to an alive covering reader
        # or orphaned (owner -1); none may point at the dead reader's cell
        # without an alive owner covering it
        for t in owned_before:
            c = int(partition.owner_of_tag[t])
            if c < 0:
                continue
            cell = partition.cells[c]
            local_t = int(np.searchsorted(cell.tag_ids, t))
            alive_local = partition.reader_alive[cell.all_reader_ids]
            covers = cell.subsystem.coverage[local_t] & alive_local
            assert covers.any()
        assert report.moved_tags + report.orphaned_tags >= 0
        # idempotent: retiring the same reader again is a no-op
        again = partition.retire_readers([victim])
        assert again.retired == ()


def boundary_deployment():
    """Hand-built adversarial boundary deployment.

    ``R = 4``, ``gamma = 2`` for all readers gives interaction radius
    ``H = 4``; with ``ShardSpec(cells=0)`` the grid side is exactly 4 and
    the origin is pinned at (0, 0) by reader 0.  The deployment then
    exercises every boundary case the merge pass must survive:

    * reader 1 at (3.5, 2): its interrogation ball straddles the cells
      keyed (0, 0) and (1, 0);
    * reader 4 at (3.8, 3.8): its ball straddles all four cells around the
      grid corner (4, 4);
    * readers 1/2 and 4/5 are cross-cell conflicting pairs;
    * tags sit exactly ON cell edges ((4, 2), (8, 2)) and the corner
      (4, 4), where ``floor`` tips them into the neighbouring bucket —
      (8, 2) additionally sits exactly at its only reader's interrogation
      radius.
    """
    rpos = np.array([
        [0.0, 0.0],    # 0: pins the origin, cell (0,0)
        [3.5, 2.0],    # 1: straddles the x=4 edge, cell (0,0)
        [4.5, 2.0],    # 2: cell (1,0) — conflicts with 1 across the edge
        [10.0, 2.0],   # 3: interior of cell (2,0)
        [3.8, 3.8],    # 4: straddles the 4-cell corner (4,4), cell (0,0)
        [4.2, 4.2],    # 5: cell (1,1) — conflicts with 4 across the corner
        [10.0, 10.0],  # 6: interior of cell (2,2)
    ])
    n = len(rpos)
    R = np.full(n, 4.0)
    gamma = np.full(n, 2.0)
    tpos = np.array([
        [4.0, 2.0],    # exactly on the x=4 edge, between readers 1 and 2
        [4.0, 4.0],    # exactly on the 4-cell corner
        [8.0, 2.0],    # on the x=8 edge, exactly at reader 3's radius
        [2.0, 2.0],    # interior, covered by reader 1 only
        [10.5, 2.0],   # interior of cell (2,0)
        [9.5, 10.0],   # interior of cell (2,2)
        [0.5, 0.5],    # near origin, covered by reader 0 only
        [50.0, 50.0],  # uncoverable
    ])
    return rpos, R, gamma, tpos


class TestBoundaryScenarios:
    @pytest.fixture(scope="class")
    def built(self):
        from repro.model.system import build_system

        rpos, R, gamma, tpos = boundary_deployment()
        system = build_system(rpos, R, gamma, tpos)
        partition = ShardPartition.from_arrays(
            rpos, R, gamma, tpos, ShardSpec(cells=0), system=system
        )
        return system, partition

    def test_partition_shape(self, built):
        system, partition = built
        assert not partition.is_trivial
        assert partition.cell_side == 4.0
        # straddling readers stay owned by the cell containing their centre
        assert partition.cell_of_reader[1] == partition.cell_of_reader[0]
        assert partition.cell_of_reader[4] == partition.cell_of_reader[0]
        assert partition.cell_of_reader[2] != partition.cell_of_reader[1]
        assert partition.cell_of_reader[5] != partition.cell_of_reader[4]

    def test_edge_tags_owned_by_lowest_covering_reader(self, built):
        system, partition = built
        owner = partition.owner_of_tag
        # tag 0 on the x=4 edge: covered by readers 1 and 2, owner = cell(1)
        assert owner[0] == partition.cell_of_reader[1]
        # tag 1 on the corner: covered by readers 4 and 5, owner = cell(4)
        assert owner[1] == partition.cell_of_reader[4]
        # the uncoverable tag is unowned
        assert owner[7] == -1
        # ownership always implies the owner cell covers the tag
        cov = system.coverage  # (m, n)
        for t in range(system.num_tags - 1):
            cell = partition.cells[owner[t]]
            assert cov[t, cell.reader_ids].any()

    def test_straddling_balls_imported_as_halo(self, built):
        _, partition = built
        c1 = partition.cell_of_reader[1]
        c2 = partition.cell_of_reader[2]
        assert 2 in partition.cells[c1].all_reader_ids
        assert 1 in partition.cells[c2].all_reader_ids
        # the corner reader is halo in its diagonal neighbour
        c5 = partition.cell_of_reader[5]
        assert 4 in partition.cells[c5].all_reader_ids

    def test_schedule_matches_unsharded_coverage(self, built):
        system, _ = built
        solver = get_solver("ghc")
        base = greedy_covering_schedule(system, solver, seed=2)
        shard = greedy_covering_schedule(
            system, solver, seed=2, shard=ShardSpec(cells=0)
        )
        assert shard.complete and base.complete
        assert shard.tags_read_total == base.tags_read_total == 7
        assert np.array_equal(shard.uncovered_tags, base.uncovered_tags)


class TestRuntime:
    def test_retire_advances_unread_counts(self, medium_system):
        partition = ShardPartition.from_system(medium_system, ShardSpec(cells=16))
        runtime = ShardRuntime(partition, incremental=True)
        before = runtime.num_unread
        coverable = np.flatnonzero(partition.owner_of_tag >= 0)
        confirmed = coverable[: min(25, len(coverable))]
        runtime.retire(confirmed)
        assert runtime.num_unread == before - len(confirmed)
        # retiring again is idempotent
        runtime.retire(confirmed)
        assert runtime.num_unread == before - len(confirmed)

    def test_best_singleton_is_max_coverage_owned_reader(self, medium_system):
        partition = ShardPartition.from_system(medium_system, ShardSpec(cells=16))
        runtime = ShardRuntime(partition, incremental=True)
        best = runtime.best_singleton()
        cov = medium_system.coverage  # (m, n)
        coverable = partition.owner_of_tag >= 0
        counts = cov[coverable].sum(axis=0)
        assert counts[best] == counts.max()
        # ties break to the lowest global id
        assert best == int(np.argmax(counts == counts.max()))

    def test_trivial_runtime_guards(self, medium_system):
        runtime = ShardRuntime(
            ShardPartition.from_system(medium_system, ShardSpec(cells=1))
        )
        with pytest.raises(RuntimeError):
            runtime.num_unread
        with pytest.raises(RuntimeError):
            runtime.live_cells()
        runtime.retire(np.array([0, 1]))  # no-op, must not raise
