"""Tier-2 contract for the cross-slot pruning layer (``repro.perf.slotdelta``).

Pins, per ``docs/performance.md``:

* ``ScheduleContext`` invariants — incremental unread mask / bits / counts
  always match a from-scratch recompute, retirement is monotone, warm starts
  are live subsets of the previous active set;
* **output identity** — with ``incremental=True`` the covering schedule's
  per-slot weights, tags-read sequences, slot count and completeness are
  byte-identical to the reference path, for every solver family, on feasible
  and degenerate (uncoverable-tag) scenarios;
* **work reduction** — the pruning is allowed (expected) to shrink
  ``sets_evaluated``; the PTAS square-index rebuild is the measurable case;
* warm-started exact branch-and-bound returns the same set and weight as a
  cold search;
* committed ``SlotRecord`` arrays are frozen.
"""

import functools

import numpy as np
import pytest

from repro.baselines.hillclimb import greedy_hill_climbing
from repro.core import greedy_covering_schedule
from repro.core.distributed import distributed_mwfs
from repro.core.exact import exact_mwfs, solve_mwfs_masks
from repro.core.localsearch import local_search_mwfs
from repro.core.neighborhood import centralized_location_free
from repro.core.oneshot import make_result
from repro.core.ptas import ptas_mwfs
from repro.model.weights import BitsetWeightOracle
from repro.obs.collectors import RunCollector
from repro.obs.events import recording
from repro.perf.slotdelta import ScheduleContext
from tests.conftest import make_random_system


# ---------------------------------------------------------------------------
# ScheduleContext unit behaviour
# ---------------------------------------------------------------------------
class TestScheduleContext:
    def test_initial_state_matches_coverage(self, line_system):
        ctx = ScheduleContext(line_system)
        assert ctx.num_unread == line_system.num_tags
        assert ctx.unread.all()
        assert ctx.unread_bits == line_system.packed_coverage.pack_mask(
            ctx.unread
        )
        # Tag 3 is covered by nobody, so every reader starts live with its
        # solo weight as the remaining count.
        for r in range(line_system.num_readers):
            assert ctx.is_live(r)
            assert ctx.remaining_counts[r] == int(
                line_system.coverage[:, r].sum()
            )
        assert not ctx.has_retired
        ctx.check()

    def test_retire_tags_updates_all_views(self, line_system):
        ctx = ScheduleContext(line_system)
        ctx.retire_tags([0])  # tag 0 is reader A's only tag
        assert ctx.num_unread == line_system.num_tags - 1
        assert not ctx.unread[0]
        assert not ctx.is_live(0)
        assert ctx.has_retired
        assert list(ctx.live_readers()) == [1, 2]
        ctx.check()

    def test_retire_tags_is_idempotent(self, line_system):
        ctx = ScheduleContext(line_system)
        ctx.retire_tags([0, 1])
        counts = ctx.remaining_counts.copy()
        ctx.retire_tags([0, 1])  # second retire of the same tags: no-op
        assert np.array_equal(ctx.remaining_counts, counts)
        assert ctx.num_unread == line_system.num_tags - 2
        ctx.check()

    def test_warm_start_is_live_subset_of_previous_active(self, line_system):
        ctx = ScheduleContext(line_system)
        assert ctx.warm_start() == []  # no previous slot yet
        ctx.note_active([0, 2])
        assert ctx.warm_start() == [0, 2]
        ctx.retire_tags([0])  # retires reader 0
        assert ctx.warm_start() == [2]

    def test_restricted_initial_unread(self, line_system):
        unread = np.ones(line_system.num_tags, dtype=bool)
        unread[3] = False  # the uncoverable tag already excluded
        ctx = ScheduleContext(line_system, unread)
        assert ctx.num_unread == 3
        unread[0] = False  # caller's array was copied
        assert ctx.unread[0]
        ctx.check()

    def test_invariants_hold_through_random_retirement(self):
        system = make_random_system(12, 150, 40, 8, 5, seed=3)
        ctx = ScheduleContext(system)
        rng = np.random.default_rng(0)
        while ctx.num_unread > 0:
            unread_ids = np.flatnonzero(ctx.unread)
            batch = rng.choice(
                unread_ids, size=min(17, unread_ids.size), replace=False
            )
            ctx.retire_tags(batch)
            ctx.check()
        assert not ctx.unread.any()
        assert ctx.unread_bits == 0
        assert list(ctx.live_readers()) == []


# ---------------------------------------------------------------------------
# Output identity: incremental=True must not move the schedule
# ---------------------------------------------------------------------------
SOLVERS = {
    "exact": exact_mwfs,
    "ptas": functools.partial(ptas_mwfs, k=2),
    "localsearch": local_search_mwfs,
    "centralized": centralized_location_free,
    "distributed": distributed_mwfs,
    "ghc": greedy_hill_climbing,
}


def _schedule_fingerprint(result):
    return {
        "size": result.size,
        "complete": result.complete,
        "weights": [slot.weight for slot in result.slots],
        "tags_read": [slot.tags_read.tolist() for slot in result.slots],
        "active": [slot.active.tolist() for slot in result.slots],
    }


@pytest.mark.parametrize("name", sorted(SOLVERS))
class TestOutputIdentity:
    def test_feasible_system(self, name):
        solver = SOLVERS[name]
        ref = greedy_covering_schedule(
            make_random_system(12, 150, 40, 8, 5, seed=3), solver, seed=11
        )
        inc = greedy_covering_schedule(
            make_random_system(12, 150, 40, 8, 5, seed=3),
            solver,
            seed=11,
            incremental=True,
        )
        assert _schedule_fingerprint(inc) == _schedule_fingerprint(ref)
        assert ref.complete

    def test_degenerate_uncoverable_tag(self, name, line_system):
        solver = SOLVERS[name]
        ref = greedy_covering_schedule(line_system, solver, seed=5)
        inc = greedy_covering_schedule(
            line_system, solver, seed=5, incremental=True
        )
        assert _schedule_fingerprint(inc) == _schedule_fingerprint(ref)
        # "complete" here means every *coverable* tag read; tag 3 never is.
        assert ref.complete
        assert ref.tags_read_total == 3

    def test_with_linklayer(self, name, line_system):
        solver = SOLVERS[name]
        ref = greedy_covering_schedule(
            line_system, solver, linklayer="aloha", seed=2
        )
        inc = greedy_covering_schedule(
            line_system, solver, linklayer="aloha", seed=2, incremental=True
        )
        assert _schedule_fingerprint(inc) == _schedule_fingerprint(ref)
        assert inc.total_micro_slots == ref.total_micro_slots


def test_incremental_with_context_blind_solver():
    """A solver without a ``context`` keyword still schedules correctly under
    ``incremental=True`` — the driver keeps the mask/retirement bookkeeping
    to itself."""

    def blind_solver(system, unread, seed):
        return make_result(system, [int(np.argmax(unread @ system.coverage))],
                           unread)

    system = make_random_system(12, 150, 40, 8, 5, seed=3)
    ref = greedy_covering_schedule(system, blind_solver)
    inc = greedy_covering_schedule(system, blind_solver, incremental=True)
    assert _schedule_fingerprint(inc) == _schedule_fingerprint(ref)


# ---------------------------------------------------------------------------
# Work reduction: pruning must shrink the PTAS's search, not just match it
# ---------------------------------------------------------------------------
def _counters(system, solver, incremental):
    collector = RunCollector()
    with recording(collector):
        result = greedy_covering_schedule(
            system, solver, seed=11, incremental=incremental
        )
    summary = collector.summary()
    return result, summary


def test_ptas_search_work_drops_with_retirement():
    """Once readers retire, the live-only square index shrinks the PTAS's
    per-square enumerations and DP cells.  (The exact branch-and-bound is
    deliberately *not* asserted on: its upper bound already prunes
    retired-only suffixes at the same nodes, so its node counts match the
    reference by construction.)"""
    solver = functools.partial(ptas_mwfs, k=2)
    ref_res, ref = _counters(
        make_random_system(20, 300, 50, 10, 5, seed=2), solver, False
    )
    inc_res, inc = _counters(
        make_random_system(20, 300, 50, 10, 5, seed=2), solver, True
    )
    assert _schedule_fingerprint(inc_res) == _schedule_fingerprint(ref_res)
    assert inc["sets_evaluated"] < ref["sets_evaluated"]
    # Output-side counters stay pinned while search work drops.
    assert inc["tags_per_slot"] == ref["tags_per_slot"]
    assert inc["rrc_blocked"] == ref["rrc_blocked"]
    assert inc["rtc_silenced"] == ref["rtc_silenced"]


def test_default_mode_counters_unchanged_by_layer():
    """With ``incremental=False`` nothing anywhere changes: identical
    schedules *and* identical work counters (tier-1 applies unchanged)."""
    solver = functools.partial(ptas_mwfs, k=2)
    res_a, a = _counters(
        make_random_system(12, 150, 40, 8, 5, seed=3), solver, False
    )
    res_b, b = _counters(
        make_random_system(12, 150, 40, 8, 5, seed=3), solver, False
    )
    assert _schedule_fingerprint(res_a) == _schedule_fingerprint(res_b)
    assert a["sets_evaluated"] == b["sets_evaluated"]
    assert a["sets_by_context"] == b["sets_by_context"]


# ---------------------------------------------------------------------------
# Warm-started exact search
# ---------------------------------------------------------------------------
def _conflict_fn(system):
    from repro.perf.cache import conflict_bits

    adj = conflict_bits(system)
    return lambda i, j: bool(adj[i] >> j & 1)


class TestWarmStart:
    def test_warm_start_returns_cold_answer(self):
        system = make_random_system(12, 150, 40, 8, 5, seed=3)
        oracle = BitsetWeightOracle(system)
        conflict = _conflict_fn(system)
        candidates = list(range(system.num_readers))
        cold_set, cold_weight, _ = solve_mwfs_masks(
            candidates, oracle, conflict
        )
        # Warm-start from several feasible subsets of the optimum, from the
        # empty set, and from the optimum itself: same set, same weight.
        for warm in ([], cold_set[:1], cold_set[:2], list(cold_set)):
            oracle = BitsetWeightOracle(system)
            warm_set, warm_weight, _ = solve_mwfs_masks(
                candidates, oracle, conflict, warm_start=warm
            )
            assert warm_weight == cold_weight
            assert sorted(warm_set) == sorted(cold_set)

    def test_warm_start_weight_restored_when_unimproved(self, line_system):
        """Seeding the incumbent one below the warm weight must not leak: if
        the search cannot beat the warm set, the true weight comes back."""
        oracle = BitsetWeightOracle(line_system)
        conflict = _conflict_fn(line_system)
        best_set, best_weight, _ = solve_mwfs_masks(
            [0, 1, 2], oracle, conflict
        )
        oracle = BitsetWeightOracle(line_system)
        warm_set, warm_weight, _ = solve_mwfs_masks(
            [0, 1, 2], oracle, conflict, warm_start=best_set
        )
        assert warm_weight == best_weight
        assert sorted(warm_set) == sorted(best_set)


# ---------------------------------------------------------------------------
# Committed slot records are frozen
# ---------------------------------------------------------------------------
def test_slot_record_arrays_are_read_only(line_system):
    result = greedy_covering_schedule(line_system, exact_mwfs)
    slot = result.slots[0]
    with pytest.raises(ValueError):
        slot.active[0] = 99
    with pytest.raises(ValueError):
        slot.tags_read[0] = 99
