"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_rng, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1 << 30, size=8)
        b = as_rng(42).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = as_rng(1).integers(0, 1 << 30, size=8)
        b = as_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = as_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(
            a.integers(0, 1 << 30, size=16), b.integers(0, 1 << 30, size=16)
        )

    def test_deterministic_from_int_seed(self):
        a1, a2 = spawn_rngs(9, 2)
        b1, b2 = spawn_rngs(9, 2)
        np.testing.assert_array_equal(
            a1.integers(0, 100, 8), b1.integers(0, 100, 8)
        )
        np.testing.assert_array_equal(
            a2.integers(0, 100, 8), b2.integers(0, 100, 8)
        )

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 4) is None

    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_salt_changes_seed(self):
        assert derive_seed(10, 3) != derive_seed(10, 4)

    def test_base_changes_seed(self):
        assert derive_seed(10, 3) != derive_seed(11, 3)

    def test_generator_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(np.random.default_rng(0), 1)
