"""Tests for repro.util.timing."""

import time

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("work"):
            time.sleep(0.01)
        assert sw.total("work") >= 0.01
        assert sw.count("work") == 1

    def test_multiple_intervals_sum(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.measure("w"):
                pass
        assert sw.count("w") == 3
        assert sw.total("w") >= 0
        assert len(sw.samples("w")) == 3

    def test_mean(self):
        sw = Stopwatch()
        sw.record("x", 1.0)
        sw.record("x", 3.0)
        assert sw.mean("x") == 2.0

    def test_unknown_label_zero(self):
        sw = Stopwatch()
        assert sw.total("nope") == 0.0
        assert sw.count("nope") == 0
        assert sw.mean("nope") == 0.0
        assert sw.samples("nope") == []

    def test_labels_sorted(self):
        sw = Stopwatch()
        sw.record("b", 1)
        sw.record("a", 1)
        assert sw.labels() == ["a", "b"]

    def test_summary_mentions_labels(self):
        sw = Stopwatch()
        sw.record("phase1", 0.5)
        assert "phase1" in sw.summary()

    def test_exception_still_records(self):
        sw = Stopwatch()
        try:
            with sw.measure("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert sw.count("boom") == 1
