"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_finite_array,
    check_in_range,
    check_loss_rate,
    check_nonnegative_int,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0, strict=False) == 0.0

    def test_rejects_negative_always(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("inf"))

    def test_coerces_to_float(self):
        out = check_positive("x", 3)
        assert isinstance(out, float)


class TestCheckInRange:
    def test_closed_interval_endpoints(self):
        assert check_in_range("x", 0, 0, 1) == 0.0
        assert check_in_range("x", 1, 0, 1) == 1.0

    def test_open_lower_end(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 1, low_open=True)

    def test_open_upper_end(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1, 0, 1, high_open=True)

    def test_outside_raises(self):
        with pytest.raises(ValueError, match="x must be in"):
            check_in_range("x", 2, 0, 1)

    def test_infinite_upper_bound(self):
        assert check_in_range("x", 1e12, 1, float("inf"), low_open=True) == 1e12


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_valid(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01])
    def test_invalid(self, p):
        with pytest.raises(ValueError):
            check_probability("p", p)


class TestCheckFiniteArray:
    def test_accepts_finite(self):
        arr = np.array([1.0, 2.0])
        out = check_finite_array("a", arr)
        np.testing.assert_array_equal(out, arr)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite_array("a", np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite_array("a", np.array([np.inf]))

    def test_empty_ok(self):
        assert check_finite_array("a", np.array([])).size == 0


class TestCheckLossRate:
    @pytest.mark.parametrize("p", [0.0, 0.5, 0.999])
    def test_valid(self, p):
        assert check_loss_rate("loss_rate", p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.0, 1.5, float("nan")])
    def test_invalid(self, p):
        with pytest.raises(ValueError):
            check_loss_rate("loss_rate", p)

    def test_message_names_the_argument(self):
        with pytest.raises(ValueError, match="p_fail must be in"):
            check_loss_rate("p_fail", 1.0)


class TestCheckNonnegativeInt:
    def test_accepts_int_and_numpy_int(self):
        assert check_nonnegative_int("n", 3) == 3
        assert check_nonnegative_int("n", np.int64(0)) == 0

    def test_minimum(self):
        assert check_nonnegative_int("n", 1, minimum=1) == 1
        with pytest.raises(ValueError, match="n must be >= 1"):
            check_nonnegative_int("n", 0, minimum=1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="n must be >= 0"):
            check_nonnegative_int("n", -1)

    @pytest.mark.parametrize("value", [True, 1.0, "2", None])
    def test_rejects_non_int(self, value):
        with pytest.raises(ValueError, match="must be an integer"):
            check_nonnegative_int("n", value)
