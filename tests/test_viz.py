"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.viz import (
    render_deployment,
    render_interference_matrix,
    render_schedule_timeline,
)
from tests.conftest import make_random_system


@pytest.fixture
def system():
    return make_random_system(8, 40, 30, 8, 5, seed=6)


class TestRenderDeployment:
    def test_contains_all_glyph_kinds(self, system):
        unread = np.zeros(system.num_tags, dtype=bool)
        unread[:10] = True
        out = render_deployment(system, active=[0, 1], unread=unread)
        assert "R" in out and "r" in out
        assert "+" in out and "." in out
        assert "legend" not in out  # legend is inline, not labelled
        assert "R=active reader (2)" in out

    def test_no_active_all_idle(self, system):
        out = render_deployment(system)
        assert "R=" in out
        body = out.split("\n")[1:-2]
        assert not any("R" in line for line in body)

    def test_show_ranges_draws_circles(self, system):
        out = render_deployment(system, active=[0], show_ranges=True, width=80)
        assert "o" in out

    def test_empty_system(self):
        from repro.model import RFIDSystem

        assert render_deployment(RFIDSystem([], [])) == "(empty system)"

    def test_width_respected(self, system):
        out = render_deployment(system, width=40)
        for line in out.split("\n")[:-1]:
            assert len(line) <= 42  # width + borders

    def test_bad_width(self, system):
        with pytest.raises(ValueError):
            render_deployment(system, width=0)

    def test_explicit_side_scales(self, system):
        a = render_deployment(system, side=30)
        b = render_deployment(system, side=300)
        assert a != b


class TestRenderTimeline:
    def test_bars_scale(self):
        out = render_schedule_timeline([10, 5, 0], width=20)
        lines = out.split("\n")
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 0
        assert out.endswith("0")

    def test_empty(self):
        assert render_schedule_timeline([]) == "(empty schedule)"

    def test_custom_label(self):
        assert "epoch   0" in render_schedule_timeline([3], label="epoch")


class TestRenderInterferenceMatrix:
    def test_marks_conflicts(self, line_system):
        out = render_interference_matrix(line_system)
        # reader 1 conflicts with reader 0 -> row "  1 #"
        assert "  1 #" in out
        # reader 2 conflicts with nobody -> row of dots
        assert "  2 .." in out

    def test_truncation_notice(self):
        system = make_random_system(45, 10, 100, 5, 3, seed=0)
        out = render_interference_matrix(system, max_readers=10)
        assert "truncated" in out
